package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONSchema pins the -json output contract for downstream tooling
// (journalcat-style consumers): top-level keys, per-diagnostic fields
// and their types, suppressed entries carrying their reason, and empty
// slices encoding as [] rather than null.
func TestJSONSchema(t *testing.T) {
	// Two fixtures in one run: suppress produces kept + suppressed
	// diagnostics, readonlychain produces interprocedural diagnostics
	// carrying the schema-v2 chain field.
	pkgs := []*Package{
		loadFixture(t, "suppress", "samplednn/internal/fixture/jsonschema"),
		loadFixture(t, "readonlychain", "samplednn/internal/fixture/readonlychain"),
	}
	res := Run("", pkgs, Checks())
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("fixtures must produce both kept (%d) and suppressed (%d) diagnostics",
			len(res.Diagnostics), len(res.Suppressed))
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	for _, key := range []string{"schema", "module", "checks", "diagnostics", "suppressed"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	if len(doc) != 5 {
		t.Errorf("top-level keys = %d, want exactly 5 (schema change needs a deliberate test update)", len(doc))
	}
	// Schema v2 = v1 plus the top-level version and the per-diagnostic
	// chain field; every v1 field is unchanged.
	if v, ok := doc["schema"].(float64); !ok || v != 2 {
		t.Errorf("schema = %v, want 2", doc["schema"])
	}

	checks, ok := doc["checks"].([]any)
	if !ok || len(checks) != len(Checks()) {
		t.Fatalf("checks = %v, want array of %d", doc["checks"], len(Checks()))
	}
	for _, c := range checks {
		m := c.(map[string]any)
		if _, ok := m["name"].(string); !ok {
			t.Errorf("check entry missing string name: %v", m)
		}
		if _, ok := m["doc"].(string); !ok {
			t.Errorf("check entry missing string doc: %v", m)
		}
	}

	diags, ok := doc["diagnostics"].([]any)
	if !ok {
		t.Fatalf("diagnostics is %T, want array", doc["diagnostics"])
	}
	sawChain := false
	for _, d := range diags {
		m := d.(map[string]any)
		for _, key := range []string{"check", "file", "message"} {
			if _, ok := m[key].(string); !ok {
				t.Errorf("diagnostic missing string %q: %v", key, m)
			}
		}
		for _, key := range []string{"line", "col"} {
			if v, ok := m[key].(float64); !ok || v < 1 {
				t.Errorf("diagnostic %q must be a positive number: %v", key, m)
			}
		}
		if _, ok := m["suppress_reason"]; ok {
			t.Errorf("kept diagnostic must not carry suppress_reason: %v", m)
		}
		// chain is omitted on intra-procedural diagnostics and is a
		// non-empty string array on interprocedural ones.
		if c, ok := m["chain"]; ok {
			arr, ok := c.([]any)
			if !ok || len(arr) < 2 {
				t.Errorf("chain must be an array of at least caller and callee: %v", m)
				continue
			}
			for _, hop := range arr {
				if _, ok := hop.(string); !ok {
					t.Errorf("chain hop must be a string: %v", m)
				}
			}
			sawChain = true
		}
	}
	if !sawChain {
		t.Error("no diagnostic carried a chain; the readonlychain fixture should produce one")
	}

	supp, ok := doc["suppressed"].([]any)
	if !ok {
		t.Fatalf("suppressed is %T, want array", doc["suppressed"])
	}
	for _, d := range supp {
		m := d.(map[string]any)
		if r, ok := m["suppress_reason"].(string); !ok || r == "" {
			t.Errorf("suppressed diagnostic must carry a non-empty suppress_reason: %v", m)
		}
	}
}

// TestJSONEmptySlices pins that a clean result encodes diagnostics and
// suppressed as [] — consumers must never need null checks.
func TestJSONEmptySlices(t *testing.T) {
	res := &Result{Module: "m"}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Diagnostics []any `json:"diagnostics"`
		Suppressed  []any `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Diagnostics == nil || doc.Suppressed == nil {
		t.Errorf("empty slices must encode as [], got %s", buf.String())
	}
}
