package lint

import (
	"go/ast"
	"go/types"
)

// checkObsCtx enforces correlated journaling in the multi-process
// layers. internal/dist and internal/serve span process boundaries —
// a coordinator, its spawned worker ranks, an HTTP server — and their
// journals are only mergeable into one causally ordered stream
// (obs.MergeJournals) when every record carries the correlation
// context: run/trace/span IDs plus the Lamport clock. A bare
// Journal.Emit in those packages silently produces records with no
// trace, which merge fine but can never be tied back to the step or
// request that caused them — the exact observability gap this repo's
// fault-injection tests exist to close. Single-process packages
// (internal/train and below) keep plain Emit.
func checkObsCtx() *Check {
	const name = "obs-ctx"
	return &Check{
		Name: name,
		Doc: "forbid obs.Journal.Emit in internal/dist and internal/serve; " +
			"multi-process layers must journal through EmitCtx so every " +
			"record carries the run/trace/span correlation context and " +
			"merged journals stay traceable",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			if !pathHasSeg(pkg.ImportPath, "internal/dist") && !pathHasSeg(pkg.ImportPath, "internal/serve") {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Emit" {
						return true
					}
					selection := pkg.Info.Selections[sel]
					if selection == nil || !isObsJournal(selection.Recv()) {
						return true
					}
					out = append(out, diag(pkg, name, call.Pos(),
						"Journal.Emit drops the correlation context: use EmitCtx so this record carries run/trace/span and merged journals stay traceable"))
					return true
				})
			}
			return out
		},
	}
}

// isObsJournal reports whether t is (a pointer to) the Journal type
// from an internal/obs package. Matching by path segment rather than
// the exact module path keeps fixtures loadable under synthetic import
// paths.
func isObsJournal(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Journal" && obj.Pkg() != nil && pathHasSeg(obj.Pkg().Path(), "internal/obs")
}
