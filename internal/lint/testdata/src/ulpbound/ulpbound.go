// Package ulpbound is a known-bad fixture: ULP-tolerance comparisons in
// library code without an annotation naming the accuracy contract.
package ulpbound

// EqualWithinULP32 stands in for the tensor helper of the same name.
func EqualWithinULP32(a, b []float32, ulps int64) bool { return len(a) == len(b) }

// ULPDistance32 stands in for the tensor diagnostic helper.
func ULPDistance32(a, b float32) int64 { return 0 }

// Verify compares kernel output with ULP tolerances, unannotated.
func Verify(got, want []float32) bool {
	if !EqualWithinULP32(got, want, 4) {
		return false
	}
	return ULPDistance32(got[0], want[0]) < 2
}

// VerifyAnnotated carries the required waiver and must be reported as
// suppressed, not as a violation.
func VerifyAnnotated(got, want []float32) bool {
	//lint:ignore ulp-bound float32 path accuracy contract (DESIGN.md §13) licenses the relaxation
	return EqualWithinULP32(got, want, 4)
}
