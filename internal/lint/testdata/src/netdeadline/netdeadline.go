// Package netdeadline exercises the net-deadline check: reads and
// writes on net connections with and without a preceding deadline.
// Deadlines are passed in as time.Time parameters so the fixture never
// reads the wall clock (which the wall-clock check would flag).
package netdeadline

import (
	"bytes"
	"net"
	"time"
)

// BadRead blocks forever when the peer dies: no deadline anywhere.
func BadRead(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf)
}

// BadWriteAfter sets the deadline only after the write — too late to
// bound it.
func BadWriteAfter(c *net.TCPConn, buf []byte, t time.Time) (int, error) {
	n, err := c.Write(buf)
	_ = c.SetWriteDeadline(t)
	return n, err
}

// BadInsideLiteral shows that a deadline in the outer function does not
// cover I/O inside a nested function literal — each scope needs its
// own.
func BadInsideLiteral(c net.Conn, buf []byte, t time.Time) func() (int, error) {
	_ = c.SetDeadline(t)
	return func() (int, error) {
		return c.Read(buf)
	}
}

// GoodRead bounds the read with a read deadline.
func GoodRead(c net.Conn, buf []byte, t time.Time) (int, error) {
	if err := c.SetReadDeadline(t); err != nil {
		return 0, err
	}
	return c.Read(buf)
}

// GoodWrite bounds the write with a general deadline.
func GoodWrite(c net.Conn, buf []byte, t time.Time) (int, error) {
	if err := c.SetDeadline(t); err != nil {
		return 0, err
	}
	return c.Write(buf)
}

// NotANetType is untouched: bytes.Buffer has Read/Write but lives
// outside package net.
func NotANetType(b *bytes.Buffer, p []byte) (int, error) {
	return b.Write(p)
}

// Waived documents a deliberately unbounded read with the mandatory
// reason.
func Waived(c net.Conn, buf []byte) (int, error) {
	//lint:ignore net-deadline fixture waiver: lifetime-blocking accept loop documented as intentional
	return c.Read(buf)
}
