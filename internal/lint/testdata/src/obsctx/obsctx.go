// Package obsctx is the obs-ctx fixture: journaling code that the
// golden test loads once under a dist-scoped import path (where bare
// Emit must fire) and once outside the multi-process layers (where the
// check stays silent).
package obsctx

import "samplednn/internal/obs"

type coordinator struct {
	journal *obs.Journal
	root    obs.Ctx
}

// announce journals without a correlation context — the record can
// never be tied to a run or trace after merging. Bad in dist/serve.
func (c *coordinator) announce(addr string) {
	c.journal.Emit("dist-listen", map[string]any{"addr": addr})
}

// announceCtx is the required form: the record carries run/trace/span.
func (c *coordinator) announceCtx(addr string) {
	c.journal.EmitCtx(c.root, "dist-listen", map[string]any{"addr": addr})
}

// bootLog is a deliberately waived site: it runs before any run
// context exists, and the directive records why that is acceptable.
func (c *coordinator) bootLog() {
	//lint:ignore obs-ctx boot-time record predates run context creation
	c.journal.Emit("dist-boot", nil)
}
