// Package floateq is a known-bad fixture: exact floating-point
// comparisons, plus the integer and constant-folded forms that must
// stay clean.
package floateq

import "math"

// Compare exercises every comparison shape the check classifies.
func Compare(a, b float64, f float32, n int) int {
	hits := 0
	if a == b {
		hits++
	}
	if a != 0 {
		hits++
	}
	if f == 1.5 {
		hits++
	}
	if a != a { // NaN probe spelled the dangerous way
		hits++
	}
	if n == 3 { // integers compare exactly; clean
		hits++
	}
	if math.Pi == 3.14159 { // folded at compile time; clean
		hits++
	}
	switch a {
	case 0:
		hits++
	}
	return hits
}
