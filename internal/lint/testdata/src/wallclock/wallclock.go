// Package wallclock is a known-bad fixture: library code reading the
// wall clock directly instead of using an injected clock.
package wallclock

import (
	"time"
	clk "time"
)

// Elapsed reads the clock three ways: a call, a duration measurement,
// and a method-value reference through an aliased import.
func Elapsed() (time.Time, time.Duration, func() time.Time) {
	t0 := time.Now()
	d := time.Since(t0)
	f := clk.Now
	return t0, d, f
}
