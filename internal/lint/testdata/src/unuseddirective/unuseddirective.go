// Package unuseddirective is the known-bad fixture for the
// stale-suppression audit: well-formed directives that suppress nothing
// in a run are reported as unused-directive, while a directive that
// earns its keep stays silent (it shows up in the suppressed list
// instead).
package unuseddirective

import "time"

//lint:file-ignore raw-goroutine fixture: stale — no goroutine ever appears in this file

// Now carries a waived wall-clock read: that directive is used.
func Now() int64 {
	return time.Now().UnixNano() //lint:ignore wall-clock fixture: telemetry-only read
}

//lint:ignore float-equality fixture: stale — the next line compares nothing

// Nop exists so the stale line directive above has code to fail to
// cover.
func Nop() {}
