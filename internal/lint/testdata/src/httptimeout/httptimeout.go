// Package httptimeout exercises the http-timeout check: http.Server
// literals with and without timeouts, and the package-level
// ListenAndServe shortcuts that never have them. Durations are passed
// in as parameters so the fixture stays clean under the wall-clock
// check.
package httptimeout

import (
	"net/http"
	"time"
)

// BadBare sets no timeouts at all.
func BadBare(addr string) *http.Server {
	return &http.Server{Addr: addr}
}

// BadWriteOnly bounds writes but not reads.
func BadWriteOnly(addr string, d time.Duration) *http.Server {
	return &http.Server{Addr: addr, WriteTimeout: d}
}

// BadReadOnly bounds reads but not writes.
func BadReadOnly(addr string, d time.Duration) http.Server {
	return http.Server{Addr: addr, ReadTimeout: d}
}

// BadShortcut is the package-level helper: it builds a Server with no
// timeouts internally, so the literal rule cannot even see it.
func BadShortcut(addr string, h http.Handler) error {
	return http.ListenAndServe(addr, h)
}

// BadShortcutTLS is the TLS variant of the same shortcut.
func BadShortcutTLS(addr, cert, key string, h http.Handler) error {
	return http.ListenAndServeTLS(addr, cert, key, h)
}

// GoodBoth sets both sides.
func GoodBoth(addr string, d time.Duration) *http.Server {
	return &http.Server{Addr: addr, ReadTimeout: d, WriteTimeout: d}
}

// GoodHeaderTimeout satisfies the read side with ReadHeaderTimeout —
// the right bound for servers that stream long responses.
func GoodHeaderTimeout(addr string, d time.Duration) *http.Server {
	return &http.Server{Addr: addr, ReadHeaderTimeout: d, WriteTimeout: d}
}

// GoodMethodCall serves from a constructed Server: the method, unlike
// the package function, is exactly what the check steers toward.
func GoodMethodCall(addr string, d time.Duration) error {
	srv := &http.Server{Addr: addr, ReadTimeout: d, WriteTimeout: d}
	return srv.ListenAndServe()
}

// Waived documents a deliberately unbounded server with the mandatory
// reason.
func Waived(addr string) *http.Server {
	//lint:ignore http-timeout fixture demonstrating an audited waiver
	return &http.Server{Addr: addr}
}
