// Package readonlychain is the known-bad fixture for the transitive
// half of readonly-forward: the mutation hides two call hops below
// ApproxForward, behind mutual recursion, and behind an interface
// dispatch — each must be flagged at the call site with the full chain.
package readonlychain

// visitor is dispatched through a receiver-held field, so the
// conservative approximation must consider every implementation.
type visitor interface {
	visit(i int)
}

// recorder is the mutating implementation.
type recorder struct{ seen []int }

func (r *recorder) visit(i int) { r.seen = append(r.seen, i) }

// silent is the clean implementation.
type silent struct{}

func (silent) visit(i int) {}

// Sampler mimics a sampled training method with helper-laundered
// mutation.
type Sampler struct {
	visited map[int]bool
	cols    []int
	h       visitor
}

// markVisited is the mutation two hops down. It is not itself a
// readonly method, so the old intra-procedural check never saw it.
func (s *Sampler) markVisited(i int) { s.visited[i] = true }

// gatherCols launders the mutation through one call hop.
func (s *Sampler) gatherCols(x []float64) []int {
	for i := range x {
		s.markVisited(i)
	}
	return s.cols
}

// lookup is a genuinely read-only helper; calling it must stay clean.
func (s *Sampler) lookup(i int) bool { return s.visited[i] }

// ApproxForward reaches the mutation through gatherCols: flagged with
// the chain ApproxForward → gatherCols → markVisited.
func (s *Sampler) ApproxForward(x []float64) []float64 {
	cols := s.gatherCols(x)
	_ = cols
	if s.lookup(0) {
		return x
	}
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// pingPong and pongPing are mutually recursive; the fixpoint must
// converge and still see pongPing's mutation.
func (s *Sampler) pingPong(n int) {
	if n > 0 {
		s.pongPing(n - 1)
	}
}

func (s *Sampler) pongPing(n int) {
	if n > 0 {
		s.pingPong(n - 1)
	}
	s.cols = nil
}

// InferForward reaches the mutation through the recursive pair.
func (s *Sampler) InferForward(x []float64) []float64 {
	s.pingPong(3)
	return x
}

// Infer calls through the receiver-held interface: any implementation
// could be the dynamic target, so the mutating recorder flags it.
func (s *Sampler) Infer(x []float64) []float64 {
	s.h.visit(0)
	return x
}
