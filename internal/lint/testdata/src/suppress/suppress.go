// Package suppress exercises the //lint:ignore machinery: file-wide
// waivers, line waivers (trailing and on the preceding line), and the
// malformed directives that must be reported rather than silently
// honored.
package suppress

import "os"

//lint:file-ignore raw-goroutine fixture-wide waiver with a reason

// Write has every violation waived except the final Rename.
func Write(path string, data []byte, done chan struct{}) error {
	go func() { close(done) }()
	//lint:ignore atomic-write fixture: waived on the line above the call
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return err
	}
	err := os.Rename(path, path+".bak") //lint:ignore atomic-write fixture: trailing waiver
	if err != nil {
		return err
	}
	return os.Rename(path+".bak", path)
}

// Bad carries two directives that must not suppress anything: one with
// no reason, one naming a check that does not exist.
func Bad(a, b float64) bool {
	//lint:ignore float-equality
	eq := a == b
	//lint:ignore no-such-check because reasons
	return eq
}
