// Package launder is the known-bad fixture for fact laundering: each
// banned primitive (wall clock, unseeded rand, raw goroutine,
// non-atomic write) hides inside a helper, and every call site reaching
// the helper must be flagged with the offending chain. The waived
// helper at the bottom pins the other half of the contract: a
// //lint:ignore at the origin sanctions the site, so the fact must NOT
// cascade into its callers.
package launder

import (
	"math/rand"
	"os"
	"time"
)

// nowNanos is the direct wall-clock violation.
func nowNanos() int64 { return time.Now().UnixNano() }

// seedOfDay launders it one hop.
func seedOfDay() int64 { return nowNanos() }

// Jitter draws from unseeded math/rand (the import is the direct
// diagnostic) and reaches the clock two hops down.
func Jitter() float64 { return rand.Float64() * float64(seedOfDay()%7) }

// Draw reaches both the rand draw and the clock transitively.
func Draw() float64 { return Jitter() }

// spawn is the direct raw-goroutine violation.
func spawn(f func()) { go f() }

// Fire launders the spawn.
func Fire(f func()) { spawn(f) }

// dump is the direct non-atomic write.
func dump(path string, b []byte) error { return os.WriteFile(path, b, 0o600) }

// Save launders the write.
func Save(b []byte) error { return dump("out.bin", b) }

// stamp is a sanctioned (waived) clock read: the waiver stops the fact,
// so Stamped below must stay clean.
func stamp() int64 {
	return time.Now().UnixNano() //lint:ignore wall-clock fixture: telemetry-only read, the cascade must stop here
}

// Stamped calls a waived origin and must produce no diagnostic.
func Stamped() int64 { return stamp() }
