// Package rawgoroutine is a known-bad fixture: a goroutine launched
// outside internal/pool, where a panic kills the whole process instead
// of discarding the batch.
package rawgoroutine

// Spawn launches an unaccounted goroutine.
func Spawn(done chan struct{}) {
	go func() {
		close(done)
	}()
}
