// Package readonlyforward is a known-bad fixture: an ApproxForward
// implementation that mutates receiver state, which would break the
// probe's non-perturbation guarantee.
package readonlyforward

// Sampler mimics a sampled training method.
type Sampler struct {
	calls int
	cache map[int]float64
	buf   []float64
	stats struct{ hits int }
}

// ApproxForward is the known-bad replay: it writes receiver state five
// different ways. Local writes and a rebind of the receiver variable
// itself must stay clean.
func (s *Sampler) ApproxForward(x []float64) []float64 {
	s.calls++
	s.cache[len(x)] = x[0]
	s.buf = append(s.buf, x...)
	s.stats.hits += 1
	delete(s.cache, 0)
	out := make([]float64, len(x))
	copy(out, x)
	local := map[int]int{}
	local[1] = 2
	s = nil
	_ = s
	return out
}

// Exact may mutate freely: it is outside the read-only method set.
func (s *Sampler) Exact() { s.calls++ }

// InferForward is the serving-layer half of the contract: a caching
// write here is the stateful-forward data race, since the server runs
// inference from many goroutines over one shared model.
func (s *Sampler) InferForward(x []float64) []float64 {
	s.buf = x
	return x
}

// Infer must be read-only too; a clean body stays clean.
func (s *Sampler) Infer(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
