// Package suppressedge exercises suppression corner cases: a file-wide
// and a line directive for the same check in one file (the file-wide
// form wins, so the line form is reported unused), and a directive
// sharing its line with code.
//
//lint:file-ignore float-equality fixture: file-wide waiver; the redundant line form below stays unused
package suppressedge

// Cmp's trailing directive is redundant with the file-ignore above:
// lookup prefers the file-wide directive, so the line directive
// suppresses nothing and is reported unused.
func Cmp(a, b float64) bool {
	return a == b //lint:ignore float-equality fixture: redundant with the file-ignore above
}
