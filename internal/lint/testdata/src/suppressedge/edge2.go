// edge2.go pins the boundary case: a trailing directive on the very
// last line of the file, on a line that also carries the offending
// code.
package suppressedge

import "time"

func LastLine() int64 { return time.Now().UnixNano() } //lint:ignore wall-clock fixture: trailing directive on the last line of the file
