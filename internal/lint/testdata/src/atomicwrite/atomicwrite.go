// Package atomicwrite is a known-bad fixture: persistent artifacts
// written with the raw os primitives a crash can tear.
package atomicwrite

import "os"

// Persist writes non-atomically three different ways.
func Persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	f, err := os.Create(path + ".new")
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".new", path)
}
