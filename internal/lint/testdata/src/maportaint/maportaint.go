// Package maportaint is the known-bad fixture for map-order-taint: the
// PR 4 bug class across a call boundary. Values produced under range
// over a map flow into callees that accumulate floats into persistent
// state (order-dependent sums), or are collected into a slice and
// summed after the loop. Sorting the collected values launders the
// taint — that path must stay clean, as must calls into callees that
// only accumulate locally.
package maportaint

import "sort"

// sumInto accumulates through a pointer parameter: persistent state,
// so it carries the accumulates-floats fact.
func sumInto(acc *float64, v float64) { *acc += v }

// record launders sumInto one hop.
func record(acc *float64, v float64) { sumInto(acc, v) }

// addAll accumulates only into a local: calling it with map-ordered
// values is harmless and must stay clean.
func addAll(vs ...float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// Total mixes tainted flows (flagged) with laundered-by-sort and
// local-accumulation flows (clean).
func Total(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		sumInto(&total, v) // tainted v into a persistent float accumulator
		_ = addAll(v, 1)   // clean: addAll's accumulation is call-local
	}

	var t2 float64
	for _, v := range m {
		w := v * 2     // derived taint
		record(&t2, w) // tainted w, two hops into the accumulator
	}

	// Collecting keys in map order and summing after the loop is the
	// laundered form of map-order-float.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	var sum3 float64
	for _, k := range keys {
		sum3 += m[k] // accumulation follows the randomized map order
	}

	// Sorting re-establishes a deterministic order: clean.
	sorted := make([]int, 0, len(m))
	for k := range m {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)
	var sum4 float64
	for _, k := range sorted {
		sum4 += m[k]
	}
	return total + t2 + sum3 + sum4
}
