// Package mathrand is a known-bad fixture: library code drawing from
// math/rand instead of internal/rng's seeded PCG streams.
package mathrand

import (
	"math/rand"
	mrv2 "math/rand/v2"
)

// Draw returns unseeded randomness; any call site in a training path
// breaks bit-reproducible resume.
func Draw() float64 { return rand.Float64() + mrv2.Float64() }
