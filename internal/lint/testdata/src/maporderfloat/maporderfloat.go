// Package maporderfloat is a known-bad fixture for the PR 4 bug class:
// accumulating floats while ranging a map, whose randomized iteration
// order changes the non-associative float sum bit-for-bit between runs.
package maporderfloat

// Totals carries an accumulator field reached through a selector.
type Totals struct{ sum float64 }

// Accumulate mixes order-sensitive accumulations (flagged) with
// order-safe patterns (clean).
func Accumulate(m map[int]float64, xs []float64) (float64, int, float64) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	var prod float64
	for _, v := range m {
		prod = prod + v
	}
	count := 0
	t := Totals{}
	for k, v := range m {
		count += k // integer accumulation is order-independent; clean
		t.sum += v
		local := 0.0
		local += v // fresh local per iteration; clean
		_ = local
	}
	var safe float64
	for _, v := range xs {
		safe += v // slice order is deterministic; clean
	}
	return sum, count, prod + t.sum + safe
}
