// Package lint is a from-scratch static-analysis suite, built only on
// the standard library's go/parser, go/ast, and go/types, that
// mechanically enforces the repository invariants the paper's
// evaluation depends on: bit-reproducible runs (seeded PCG only, no
// wall clocks in library code), panic-isolated concurrency (no raw
// goroutines outside internal/pool), crash-safe persistence (all
// durable writes through internal/atomicfile), the read-only
// ApproxForward contract the error probe relies on, exact float
// comparisons, and the map-iteration-order-into-float-accumulation bug
// class that PR 4 caught by hand.
//
// Since the interprocedural upgrade, the suite analyzes the module as a
// whole: a call graph over every package (static calls plus a
// conservative interface-dispatch approximation) carries per-function
// facts — mutates-receiver, spawns-goroutine, reads-wall-clock,
// uses-unseeded-rand, performs-raw-write, accumulates-floats — to
// fixpoint, so a violation laundered through helpers is flagged at the
// call site with the full offending chain
// (ApproxForward → gatherCols → markVisited).
//
// Diagnostics can be suppressed at a single site with
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it, or for a
// whole file with
//
//	//lint:file-ignore <check> <reason>
//
// A non-empty reason is mandatory: the directive is the audit trail for
// why the invariant is deliberately waived at that site. A directive
// that suppresses nothing in a run is itself reported
// (unused-directive), so waivers cannot outlive the code they excuse.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A Check is one analyzer: a named invariant plus the function that
// walks a type-checked package and reports violations. Checks receive
// the whole-module Program so they can consult call-graph facts.
type Check struct {
	// Name is the stable identifier used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant and why the
	// repo cares about it.
	Doc string
	// Run reports all violations in pkg, consulting prog for
	// interprocedural facts. Suppression is applied by the runner, not
	// by the check.
	Run func(prog *Program, pkg *Package) []Diagnostic
}

// A Diagnostic is one reported violation at a source position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Chain is the offending call chain for interprocedural findings,
	// outermost function first (schema v2).
	Chain []string `json:"chain,omitempty"`
	// SuppressReason is the justification from the matching
	// //lint:ignore directive; set only on suppressed diagnostics.
	SuppressReason string `json:"suppress_reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// diagKey is the comparable identity used for dedup (Diagnostic itself
// is not comparable once it carries the chain slice).
type diagKey struct {
	check, file, message string
	line, col            int
}

func (d Diagnostic) key() diagKey {
	return diagKey{d.Check, d.File, d.Message, d.Line, d.Col}
}

// diag builds a Diagnostic for pkg at pos.
func diag(pkg *Package, check string, pos token.Pos, format string, args ...any) Diagnostic {
	p := pkg.Fset.Position(pos)
	return Diagnostic{
		Check:   check,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// chainDiag builds an interprocedural Diagnostic whose message carries
// the rendered call chain and whose Chain field carries it structurally
// for the JSON consumers.
func chainDiag(pkg *Package, check string, pos token.Pos, chain []string, format string, args ...any) Diagnostic {
	d := diag(pkg, check, pos, format, args...)
	d.Chain = chain
	d.Message += " (" + strings.Join(chain, " → ") + ")"
	return d
}

// Checks returns the full analyzer suite in stable order.
func Checks() []*Check {
	return []*Check{
		checkMathRand(),
		checkWallClock(),
		checkRawGoroutine(),
		checkNetDeadline(),
		checkHTTPTimeout(),
		checkAtomicWrite(),
		checkReadonlyForward(),
		checkFloatEquality(),
		checkMapOrderFloat(),
		checkMapOrderTaint(),
		checkULPBound(),
		checkObsCtx(),
	}
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
