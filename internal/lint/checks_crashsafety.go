package lint

import (
	"go/ast"
)

// checkAtomicWrite forbids the non-atomic file-replacement primitives
// (os.Create, os.WriteFile, os.Rename) outside internal/atomicfile. A
// crash mid-write through any of them leaves a torn file; checkpoints,
// model snapshots, result CSVs and bench JSON all have to survive the
// very crash they exist to diagnose, so every durable artifact goes
// through atomicfile's temp-file + fsync + rename sequence.
func checkAtomicWrite() *Check {
	const name = "atomic-write"
	return &Check{
		Name: name,
		Doc: "forbid os.Create/os.WriteFile/os.Rename outside internal/atomicfile; " +
			"persistent artifacts must be written atomically",
		Run: func(pkg *Package) []Diagnostic {
			if pathHasSeg(pkg.ImportPath, "internal/atomicfile") {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if isPkgSel(pkg, sel, "os", "Create", "WriteFile", "Rename") {
						out = append(out, diag(pkg, name, sel.Pos(),
							"os.%s bypasses crash-safe persistence: use internal/atomicfile (temp file + fsync + rename)", sel.Sel.Name))
					}
					return true
				})
			}
			return out
		},
	}
}
