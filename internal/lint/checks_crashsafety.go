package lint

import (
	"go/ast"
)

// checkAtomicWrite forbids the non-atomic file-replacement primitives
// (os.Create, os.WriteFile, os.Rename) outside internal/atomicfile. A
// crash mid-write through any of them leaves a torn file; checkpoints,
// model snapshots, result CSVs and bench JSON all have to survive the
// very crash they exist to diagnose, so every durable artifact goes
// through atomicfile's temp-file + fsync + rename sequence. The
// performs-raw-write fact extends the ban transitively: wrapping
// os.WriteFile in a helper flags every call site reaching it.
func checkAtomicWrite() *Check {
	const name = "atomic-write"
	return &Check{
		Name: name,
		Doc: "forbid os.Create/os.WriteFile/os.Rename outside internal/atomicfile, " +
			"directly and through transitive callees; persistent artifacts " +
			"must be written atomically",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !atomicWriteInScope(pkg.ImportPath) {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if isPkgSel(pkg, sel, "os", "Create", "WriteFile", "Rename") {
						out = append(out, diag(pkg, name, sel.Pos(),
							"os.%s bypasses crash-safe persistence: use internal/atomicfile (temp file + fsync + rename)", sel.Sel.Name))
					}
					return true
				})
			}
			out = append(out, launderedCalls(prog, pkg, name, FactRawWrite,
				"performs a non-atomic file write through its callees: route the write through internal/atomicfile")...)
			return out
		},
	}
}
