package lint

import (
	"go/ast"
	"strings"
)

// checkULPBound flags calls to the ULP-comparison helpers
// (tensor.EqualWithinULP32, tensor.ULPDistance32, anything whose name
// mentions ULP) in non-test library code. A ULP predicate is a relaxed
// equality: it accepts results that differ from the reference, which is
// exactly what the float64 kernels' bit-identity contract forbids.
// Legitimate uses — the float32 path's documented accuracy bound, bench
// diagnostics — must carry a //lint:ignore ulp-bound annotation stating
// which contract licenses the relaxation. internal/tensor itself is
// exempt as the definition site, mirroring internal/atomicfile under
// the atomicwrite check.
func checkULPBound() *Check {
	const name = "ulp-bound"
	return &Check{
		Name: name,
		Doc: "flag ULP-tolerance comparisons outside tests and internal/tensor; " +
			"a ULP bound relaxes the bit-identity contract and each site must " +
			"annotate which accuracy contract (DESIGN.md §13) licenses it",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			// internal/tensor defines the helpers; internal/lint defines
			// this analyzer (whose own constructor mentions ULP).
			if pathHasSeg(pkg.ImportPath, "internal/tensor") || pathHasSeg(pkg.ImportPath, "internal/lint") {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var fnName string
					switch fn := call.Fun.(type) {
					case *ast.Ident:
						fnName = fn.Name
					case *ast.SelectorExpr:
						fnName = fn.Sel.Name
					default:
						return true
					}
					if !strings.Contains(fnName, "ULP") {
						return true
					}
					out = append(out, diag(pkg, name, call.Pos(),
						"%s relaxes bit-identity to a ULP bound: annotate the accuracy contract that licenses it", fnName))
					return true
				})
			}
			return out
		},
	}
}
