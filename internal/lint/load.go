package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked (non-test) package, the unit
// every Check operates on.
type Package struct {
	// ImportPath is the package's path within the module
	// (e.g. "samplednn/internal/core"). Checks use it for scoping:
	// which subtrees an invariant applies to and which packages own an
	// exemption.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the package's non-test files, sorted by filename.
	// Test files are exempt from every invariant by design, so they are
	// never parsed.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Checks still run on a
	// partially typed package; positions that failed to type simply
	// resolve to nil types and are skipped.
	TypeErrors []error
}

// pathHasPrefixSeg reports whether the slash-separated import path
// contains prefix as a consecutive run of segments, e.g.
// pathHasSeg("samplednn/internal/rng", "internal/rng") == true.
func pathHasSeg(path, prefix string) bool {
	return strings.Contains("/"+path+"/", "/"+prefix+"/")
}

// A Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports are resolved by recursively
// loading their directories, standard-library imports are type-checked
// from $GOROOT/src via go/importer's "source" importer. No go/packages,
// no export data, no toolchain invocation.
type Loader struct {
	ModRoot string
	ModPath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module directory containing
// go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from
	// $GOROOT/src through go/build. Cgo-gated files cannot be
	// type-checked without running the cgo tool, so force the pure-Go
	// build configuration; the module itself is pure Go.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule loads every non-test package under the module root,
// skipping testdata, hidden directories, and directories without Go
// files. Returned packages are sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		ipath := l.ModPath
		if rel != "." {
			ipath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, ipath)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", ipath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, presenting
// it under importPath. Tests use explicit import paths to place fixture
// packages inside (or outside) a check's scope.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (if incomplete) *types.Package even when
	// it also reports errors; checks degrade gracefully on nil types.
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	_ = names
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	return files, names, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loaderImporter adapts Loader to types.Importer: module-internal
// import paths load recursively from source, everything else (the
// standard library) goes through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
