package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"samplednn/internal/pool"
)

// A Package is one parsed and type-checked (non-test) package, the unit
// every Check operates on.
type Package struct {
	// ImportPath is the package's path within the module
	// (e.g. "samplednn/internal/core"). Checks use it for scoping:
	// which subtrees an invariant applies to and which packages own an
	// exemption.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the package's non-test files, sorted by filename.
	// Test files are exempt from every invariant by design, so they are
	// never parsed.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Checks still run on a
	// partially typed package; positions that failed to type simply
	// resolve to nil types and are skipped.
	TypeErrors []error
}

// pathHasPrefixSeg reports whether the slash-separated import path
// contains prefix as a consecutive run of segments, e.g.
// pathHasSeg("samplednn/internal/rng", "internal/rng") == true.
func pathHasSeg(path, prefix string) bool {
	return strings.Contains("/"+path+"/", "/"+prefix+"/")
}

// A Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports are resolved by recursively
// loading their directories, standard-library imports are type-checked
// from $GOROOT/src via go/importer's "source" importer. No go/packages,
// no export data, no toolchain invocation.
type Loader struct {
	ModRoot string
	ModPath string

	fset *token.FileSet
	std  types.Importer
	// mu guards pkgs and loading; stdMu serializes the source importer,
	// which is not safe for concurrent use. token.FileSet methods are
	// internally synchronized, so fset needs no guard.
	mu      sync.Mutex
	stdMu   sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module directory containing
// go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from
	// $GOROOT/src through go/build. Cgo-gated files cannot be
	// type-checked without running the cgo tool, so force the pure-Go
	// build configuration; the module itself is pure Go.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule loads every non-test package under the module root,
// skipping testdata, hidden directories, and directories without Go
// files. Returned packages are sorted by import path.
//
// Parsing runs serially in directory order so the shared FileSet is
// populated deterministically; type-checking is then scheduled in
// dependency waves (Kahn's algorithm over the module-internal import
// graph) with each wave's packages checked concurrently over
// internal/pool. A package is only ever checked after every module
// package it imports has finished, so the importer sees nothing but
// cache hits during a wave; the standard-library importer is serialized
// behind its own mutex. Diagnostics are identical to a serial load:
// positions come from the serially-built FileSet and all downstream
// ordering sorts by (filename, offset).
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 1: parse everything serially.
	type parsed struct {
		dir, ipath string
		files      []*ast.File
	}
	var ps []*parsed
	byPath := make(map[string]*parsed)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		ipath := l.ModPath
		if rel != "." {
			ipath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		files, _, err := l.parseDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", ipath, err)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("lint: loading %s: no non-test Go files in %s", ipath, dir)
		}
		p := &parsed{dir: dir, ipath: ipath, files: files}
		ps = append(ps, p)
		byPath[ipath] = p
	}

	// Phase 2: the module-internal import graph, straight from the ASTs
	// the type-checker will see — a module import absent here is
	// impossible.
	indeg := make(map[string]int, len(ps))
	dependents := make(map[string][]string)
	for _, p := range ps {
		seen := make(map[string]bool)
		for _, f := range p.files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[path] {
					continue
				}
				if _, ok := byPath[path]; ok && path != p.ipath {
					seen[path] = true
					dependents[path] = append(dependents[path], p.ipath)
					indeg[p.ipath]++
				}
			}
		}
	}

	// Phase 3: type-check in waves.
	checked := make(map[string]bool, len(ps))
	var wave []*parsed
	for _, p := range ps {
		if indeg[p.ipath] == 0 {
			wave = append(wave, p)
		}
	}
	for len(wave) > 0 {
		sort.Slice(wave, func(i, j int) bool { return wave[i].ipath < wave[j].ipath })
		w := wave
		pool.Default().ParallelRows(len(w), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				l.typeCheck(w[i].dir, w[i].ipath, w[i].files)
			}
		})
		wave = nil
		for _, p := range w {
			checked[p.ipath] = true
			for _, dep := range dependents[p.ipath] {
				if indeg[dep]--; indeg[dep] == 0 {
					wave = append(wave, byPath[dep])
				}
			}
		}
	}

	var pkgs []*Package
	for _, p := range ps {
		if !checked[p.ipath] {
			// Left over means an import cycle; the serial path reports it.
			if _, err := l.LoadDir(p.dir, p.ipath); err != nil {
				return nil, fmt.Errorf("lint: loading %s: %w", p.ipath, err)
			}
		}
		l.mu.Lock()
		pkg := l.pkgs[p.ipath]
		l.mu.Unlock()
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, presenting
// it under importPath. Tests use explicit import paths to place fixture
// packages inside (or outside) a check's scope. Unlike the wave
// scheduler, this path loads module-internal imports by recursing on
// demand; it is the serial entry point and must not be called
// concurrently for the same uncached import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[importPath]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	if l.loading[importPath] {
		l.mu.Unlock()
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, importPath)
		l.mu.Unlock()
	}()

	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	return l.typeCheck(dir, importPath, files), nil
}

// typeCheck runs the type checker over an already-parsed package and
// caches the result. Safe to call concurrently for distinct import
// paths whose module-internal imports are all cached already (the wave
// scheduler's invariant).
func (l *Loader) typeCheck(dir, importPath string, files []*ast.File) *Package {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (if incomplete) *types.Package even when
	// it also reports errors; checks degrade gracefully on nil types.
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.mu.Lock()
	l.pkgs[importPath] = pkg
	l.mu.Unlock()
	return pkg
}

func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	return files, names, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loaderImporter adapts Loader to types.Importer: module-internal
// import paths load recursively from source, everything else (the
// standard library) goes through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
