package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// JSONSchemaVersion is the pinned -json output schema. v2 added the
// top-level "schema" field itself and the per-diagnostic "chain" array
// carried by interprocedural findings; every v1 field is unchanged.
const JSONSchemaVersion = 2

// A Result is the outcome of running the analyzer suite over a set of
// packages. Diagnostics and Suppressed are each sorted by position;
// file paths are relative to the module root when possible.
type Result struct {
	Schema int    `json:"schema"`
	Module string `json:"module"`
	// Checks lists every analyzer that ran, so downstream tooling can
	// tell "check passed" from "check didn't exist yet".
	Checks []CheckInfo `json:"checks"`
	// Diagnostics are the unsuppressed violations; a non-empty list
	// fails the lint gate.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are violations waived by a //lint:ignore directive,
	// kept in the output as the audit trail.
	Suppressed []Diagnostic `json:"suppressed"`
}

// CheckInfo describes one analyzer in JSON output.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// Run builds the interprocedural Program over pkgs, executes checks,
// and splits the findings into kept and suppressed diagnostics.
// Malformed //lint:ignore directives are reported as diagnostics of the
// pseudo-check "lint-directive" so a typo cannot silently disable an
// invariant; well-formed directives that suppressed nothing are
// reported as "unused-directive" so stale waivers cannot rot silently
// (neither pseudo-kind is itself suppressible).
func Run(modRoot string, pkgs []*Package, checks []*Check) *Result {
	return RunProgram(modRoot, NewProgram(pkgs), checks)
}

// RunProgram is Run over an already-built Program (cmd/repolint builds
// it once to also serve -facts).
func RunProgram(modRoot string, prog *Program, checks []*Check) *Result {
	pkgs := prog.Pkgs
	res := &Result{Schema: JSONSchemaVersion, Module: filepath.Base(modRoot)}
	if len(pkgs) > 0 {
		// Prefer the module path over the directory basename.
		if i := pkgIndexShortestPath(pkgs); i >= 0 {
			res.Module = rootModule(pkgs[i].ImportPath)
		}
	}
	for _, c := range checks {
		res.Checks = append(res.Checks, CheckInfo{Name: c.Name, Doc: c.Doc})
	}
	seen := make(map[diagKey]bool)
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg)
		sup := newSuppressor(dirs)
		var ds []Diagnostic
		for i := range dirs {
			if dirs[i].Malformed != "" {
				ds = append(ds, Diagnostic{
					Check:   "lint-directive",
					File:    dirs[i].File,
					Line:    dirs[i].Line,
					Col:     1,
					Message: "malformed lint directive: " + dirs[i].Malformed,
				})
			}
		}
		for _, c := range checks {
			ds = append(ds, c.Run(prog, pkg)...)
		}
		for _, d := range ds {
			if reason, ok := sup.match(d); ok {
				d.SuppressReason = reason
				d.File = relTo(modRoot, d.File)
				if !seen[d.key()] {
					seen[d.key()] = true
					res.Suppressed = append(res.Suppressed, d)
				}
				continue
			}
			d.File = relTo(modRoot, d.File)
			if !seen[d.key()] {
				seen[d.key()] = true
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
		// Stale-suppression audit: every well-formed directive must have
		// earned its keep this run.
		for i := range dirs {
			d := &dirs[i]
			if d.Malformed != "" || d.used {
				continue
			}
			ud := Diagnostic{
				Check: "unused-directive",
				File:  relTo(modRoot, d.File),
				Line:  d.Line,
				Col:   1,
				Message: fmt.Sprintf("lint directive for %q suppressed no diagnostics this run: "+
					"remove the stale waiver or fix the directive placement", d.Check),
			}
			if !seen[ud.key()] {
				seen[ud.key()] = true
				res.Diagnostics = append(res.Diagnostics, ud)
			}
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res
}

func pkgIndexShortestPath(pkgs []*Package) int {
	best := -1
	for i, p := range pkgs {
		if p.ImportPath == "" {
			continue
		}
		if best < 0 || len(p.ImportPath) < len(pkgs[best].ImportPath) {
			best = i
		}
	}
	return best
}

func rootModule(importPath string) string {
	mod, _, _ := strings.Cut(importPath, "/")
	return mod
}

func relTo(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return file
}

// WriteText prints diagnostics in the classic file:line:col form plus a
// one-line summary.
func (r *Result) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	fmt.Fprintf(w, "repolint: %d issue(s), %d suppressed, %d check(s)\n",
		len(r.Diagnostics), len(r.Suppressed), len(r.Checks))
}

// WriteJSON emits the machine-readable form consumed by downstream
// tooling (journalcat-style). The schema is pinned by a test.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	r.Schema = JSONSchemaVersion
	// Encode empty slices as [], not null: consumers should not need
	// null checks.
	if r.Diagnostics == nil {
		r.Diagnostics = []Diagnostic{}
	}
	if r.Suppressed == nil {
		r.Suppressed = []Diagnostic{}
	}
	return enc.Encode(r)
}
