package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// A Result is the outcome of running the analyzer suite over a set of
// packages. Diagnostics and Suppressed are each sorted by position;
// file paths are relative to the module root when possible.
type Result struct {
	Module string `json:"module"`
	// Checks lists every analyzer that ran, so downstream tooling can
	// tell "check passed" from "check didn't exist yet".
	Checks []CheckInfo `json:"checks"`
	// Diagnostics are the unsuppressed violations; a non-empty list
	// fails the lint gate.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are violations waived by a //lint:ignore directive,
	// kept in the output as the audit trail.
	Suppressed []Diagnostic `json:"suppressed"`
}

// CheckInfo describes one analyzer in JSON output.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// Run executes checks over pkgs and splits the findings into kept and
// suppressed diagnostics. Malformed //lint:ignore directives are
// reported as diagnostics of the pseudo-check "lint-directive" so a
// typo cannot silently disable an invariant.
func Run(modRoot string, pkgs []*Package, checks []*Check) *Result {
	res := &Result{Module: filepath.Base(modRoot)}
	if len(pkgs) > 0 {
		// Prefer the module path over the directory basename.
		if i := pkgIndexShortestPath(pkgs); i >= 0 {
			res.Module = rootModule(pkgs[i].ImportPath)
		}
	}
	for _, c := range checks {
		res.Checks = append(res.Checks, CheckInfo{Name: c.Name, Doc: c.Doc})
	}
	seen := make(map[Diagnostic]bool)
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg)
		sup := newSuppressor(dirs)
		var ds []Diagnostic
		for _, d := range dirs {
			if d.Malformed != "" {
				ds = append(ds, Diagnostic{
					Check:   "lint-directive",
					File:    d.File,
					Line:    d.Line,
					Col:     1,
					Message: "malformed lint directive: " + d.Malformed,
				})
			}
		}
		for _, c := range checks {
			ds = append(ds, c.Run(pkg)...)
		}
		for _, d := range ds {
			if reason, ok := sup.match(d); ok {
				d.SuppressReason = reason
				d.File = relTo(modRoot, d.File)
				if !seen[d] {
					seen[d] = true
					res.Suppressed = append(res.Suppressed, d)
				}
				continue
			}
			d.File = relTo(modRoot, d.File)
			if !seen[d] {
				seen[d] = true
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res
}

func pkgIndexShortestPath(pkgs []*Package) int {
	best := -1
	for i, p := range pkgs {
		if p.ImportPath == "" {
			continue
		}
		if best < 0 || len(p.ImportPath) < len(pkgs[best].ImportPath) {
			best = i
		}
	}
	return best
}

func rootModule(importPath string) string {
	mod, _, _ := strings.Cut(importPath, "/")
	return mod
}

func relTo(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return file
}

// WriteText prints diagnostics in the classic file:line:col form plus a
// one-line summary.
func (r *Result) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	fmt.Fprintf(w, "repolint: %d issue(s), %d suppressed, %d check(s)\n",
		len(r.Diagnostics), len(r.Suppressed), len(r.Checks))
}

// WriteJSON emits the machine-readable form consumed by downstream
// tooling (journalcat-style). The schema is pinned by a test.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode empty slices as [], not null: consumers should not need
	// null checks.
	if r.Diagnostics == nil {
		r.Diagnostics = []Diagnostic{}
	}
	if r.Suppressed == nil {
		r.Suppressed = []Diagnostic{}
	}
	return enc.Encode(r)
}
