package lint

import (
	"go/ast"
)

// checkRawGoroutine forbids `go` statements outside internal/pool. The
// crash-safe runtime's panic isolation (PR 1) depends on every worker
// being launched by the pool, which wraps tasks in recover() and
// converts a panicking sample into a discarded batch instead of a dead
// process with a half-written checkpoint. A raw goroutine that panics
// kills the run. The spawns-goroutine fact carries the ban through the
// call graph: a helper hiding a raw `go` statement flags every call
// site reaching it, chain included.
func checkRawGoroutine() *Check {
	const name = "raw-goroutine"
	return &Check{
		Name: name,
		Doc: "forbid raw `go` statements outside internal/pool, directly and " +
			"through transitive callees; concurrency must go through the " +
			"panic-isolated worker pool",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !rawGoroutineInScope(pkg.ImportPath) {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						out = append(out, diag(pkg, name, g.Pos(),
							"raw go statement: use internal/pool so panics are isolated and the goroutine is accounted for"))
					}
					return true
				})
			}
			out = append(out, launderedCalls(prog, pkg, name, FactSpawnsGoroutine,
				"spawns a raw goroutine through its callees: use internal/pool so panics stay isolated")...)
			return out
		},
	}
}
