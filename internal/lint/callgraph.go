package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Program is the whole-module view the interprocedural checks operate
// on: every declared function and method across the analyzed packages,
// the static call graph between them (including a conservative
// approximation of interface dispatch), and the per-function facts
// propagated to fixpoint over that graph. Per-package checks receive
// the Program alongside their package, so an invariant like the
// read-only forward contract can follow a call two packages away
// instead of stopping at the function boundary.
type Program struct {
	Pkgs []*Package

	// fns maps every function/method declared with a body in Pkgs to
	// its node. Identity holds across packages because all packages
	// come from one Loader (one type-checking universe).
	fns map[*types.Func]*FuncInfo
	// sorted holds the same nodes in deterministic (file, offset)
	// order; the fact fixpoint and -facts output iterate this.
	sorted []*FuncInfo
	// impls indexes, per method name, the concrete methods in the
	// module that may satisfy an interface call of that name. Built
	// lazily per dispatch site from namedTypes.
	namedTypes []*types.Named
}

// A FuncInfo is one call-graph node: a declared function or method with
// its outgoing call sites and its local + transitive fact sets.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File
	// Recv holds the objects bound to the receiver names (empty for
	// plain functions and blank receivers).
	Recv map[types.Object]bool
	// Calls are the resolved outgoing edges in source order.
	Calls []*CallSite

	// Local is the fact set contributed by this function's own body;
	// Trans is Local plus everything propagated from callees at
	// fixpoint.
	Local FactSet
	Trans FactSet
	// via records, for each transitively acquired fact, the callee the
	// fact arrived through — enough to reconstruct the offending call
	// chain for diagnostics.
	via [numFacts]*FuncInfo
}

// A CallSite is one syntactic call with its resolved callees. A static
// call has exactly one callee; a call through an interface method lists
// every concrete method in the module whose receiver type implements
// the interface (the conservative dispatch approximation).
type CallSite struct {
	Pos token.Pos
	// RecvRooted is true when the callee's receiver expression is
	// rooted at the calling method's receiver — the condition under
	// which a callee's receiver mutation mutates the caller's receiver
	// state too.
	RecvRooted bool
	// Dispatch is true for interface calls (callees are the
	// conservative implementation set, not a proven target).
	Dispatch bool
	Callees  []*FuncInfo
}

// NumFunctions reports how many call-graph nodes the program holds
// (every function and method declared with a body).
func (p *Program) NumFunctions() int { return len(p.sorted) }

// NewProgram builds the call graph and computes facts to fixpoint over
// pkgs. Facts from call sites carrying a matching //lint:ignore
// directive are deliberately dropped: a waived wall-clock read (e.g.
// phase-cost telemetry) is sanctioned, and propagating it would demand
// a waiver at every transitive caller.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs: pkgs,
		fns:  make(map[*types.Func]*FuncInfo),
	}
	prog.collectNamedTypes()
	// Pass 1: nodes.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: obj, Decl: fd, Pkg: pkg, File: f}
				if fd.Recv != nil {
					fi.Recv = receiverObjects(pkg, fd)
				}
				prog.fns[obj] = fi
				prog.sorted = append(prog.sorted, fi)
			}
		}
	}
	sort.Slice(prog.sorted, func(i, j int) bool {
		a, b := prog.sorted[i], prog.sorted[j]
		pa, pb := a.Pkg.Fset.Position(a.Decl.Pos()), b.Pkg.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	// Pass 2: edges (needs all nodes present to resolve cross-package
	// and dispatch targets).
	for _, fi := range prog.sorted {
		prog.collectCalls(fi)
	}
	computeFacts(prog)
	return prog
}

// FuncOf returns the call-graph node for a declared function, or nil.
func (p *Program) FuncOf(fn *types.Func) *FuncInfo { return p.fns[fn] }

// InfoFor returns the node for the method/function declared by fd in
// pkg, or nil.
func (p *Program) InfoFor(pkg *Package, fd *ast.FuncDecl) *FuncInfo {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return p.fns[obj]
}

// collectNamedTypes gathers every defined (non-interface) type in the
// program, the candidate receiver set for interface dispatch.
func (p *Program) collectNamedTypes() {
	for _, pkg := range p.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			p.namedTypes = append(p.namedTypes, named)
		}
	}
	sort.Slice(p.namedTypes, func(i, j int) bool {
		a, b := p.namedTypes[i], p.namedTypes[j]
		if ap, bp := a.Obj().Pkg(), b.Obj().Pkg(); ap != nil && bp != nil && ap.Path() != bp.Path() {
			return ap.Path() < bp.Path()
		}
		return a.Obj().Name() < b.Obj().Name()
	})
}

// collectCalls resolves fi's outgoing edges. Calls through function
// values and method values passed around as data are not resolved
// (soundness caveat documented in DESIGN.md §15); function literals are
// attributed lexically to the enclosing declaration, so a closure body
// contributes its calls and facts to the function that contains it.
func (p *Program) collectCalls(fi *FuncInfo) {
	pkg := fi.Pkg
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees, dispatch, recvExpr := p.CalleesAt(pkg, call)
		if len(callees) == 0 {
			return true
		}
		rooted := recvExpr != nil && len(fi.Recv) > 0 && receiverRooted(pkg, recvExpr, fi.Recv)
		fi.Calls = append(fi.Calls, &CallSite{
			Pos: call.Pos(), RecvRooted: rooted, Dispatch: dispatch, Callees: callees,
		})
		return true
	})
}

// CalleesAt resolves the possible program-internal targets of call:
// one node for a static call, the conservative implementation set for a
// call through an interface method (dispatch=true), nothing for
// builtins, conversions, calls into the standard library, and calls
// through function values. recvExpr is the receiver expression for
// method calls.
func (p *Program) CalleesAt(pkg *Package, call *ast.CallExpr) (callees []*FuncInfo, dispatch bool, recvExpr ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if callee, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if target := p.fns[callee]; target != nil {
				return []*FuncInfo{target}, false, nil
			}
		}
	case *ast.SelectorExpr:
		sel := pkg.Info.Selections[fun]
		if sel == nil {
			// Package-qualified call (pkg.F) or type conversion.
			if callee, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if target := p.fns[callee]; target != nil {
					return []*FuncInfo{target}, false, nil
				}
			}
			return nil, false, nil
		}
		if sel.Kind() != types.MethodVal {
			return nil, false, nil
		}
		if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
			return p.implementations(iface, fun.Sel.Name), true, fun.X
		}
		callee, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil, false, nil
		}
		if target := p.fns[callee]; target != nil {
			return []*FuncInfo{target}, false, fun.X
		}
	}
	return nil, false, nil
}

// implementations returns the nodes of every concrete method named
// method whose receiver type (value or pointer) implements iface — the
// conservative interface-dispatch approximation: any of them could be
// the dynamic target, so all of them are edges.
func (p *Program) implementations(iface *types.Interface, method string) []*FuncInfo {
	var out []*FuncInfo
	seen := make(map[*FuncInfo]bool)
	for _, named := range p.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if target := p.fns[fn]; target != nil && !seen[target] {
			seen[target] = true
			out = append(out, target)
		}
	}
	return out
}

// Chain reconstructs the call chain by which fi transitively acquired
// fact, starting at fi and ending at the function whose own body
// carries it. The result is rendered into diagnostics so a waiver's
// reviewer can audit the exact path.
func (p *Program) Chain(fi *FuncInfo, fact Fact) []string {
	var names []string
	seen := make(map[*FuncInfo]bool)
	for fi != nil && !seen[fi] {
		seen[fi] = true
		names = append(names, fi.DisplayName())
		if fi.Local.Has(fact) {
			break
		}
		fi = fi.via[fact]
	}
	return names
}

// DisplayName renders the node for chain output: methods as
// (*T).Name / (T).Name, plain functions by bare name, both prefixed
// with the package basename when it disambiguates across packages.
func (fi *FuncInfo) DisplayName() string {
	fn := fi.Fn
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Name()
}

// receiverObjects returns the set of objects bound to fd's receiver
// names (empty for an unnamed or blank receiver).
func receiverObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	recv := make(map[types.Object]bool)
	for _, field := range fd.Recv.List {
		for _, nm := range field.Names {
			if nm.Name == "_" {
				continue
			}
			if obj := pkg.Info.Defs[nm]; obj != nil {
				recv[obj] = true
			}
		}
	}
	return recv
}

// receiverRooted reports whether expr is a selector/index chain with at
// least one step whose root identifier is the method receiver — i.e. a
// write through it mutates state reachable from the receiver, and a
// method called on it runs with (part of) the receiver as its own
// receiver. The bare receiver identifier itself also counts for call
// receivers (s.helper() runs helper on the caller's receiver).
func receiverRooted(pkg *Package, expr ast.Expr, recv map[types.Object]bool) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return recv[pkg.Info.Uses[e]]
		default:
			return false
		}
	}
}

// receiverRootedWrite is receiverRooted restricted to write targets: at
// least one selector/index step is required, so rebinding the receiver
// variable itself (s = nil) stays a local write.
func receiverRootedWrite(pkg *Package, expr ast.Expr, recv map[types.Object]bool) bool {
	depth := 0
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			depth++
			expr = e.X
		case *ast.IndexExpr:
			depth++
			expr = e.X
		case *ast.Ident:
			return depth > 0 && recv[pkg.Info.Uses[e]]
		default:
			return false
		}
	}
}
