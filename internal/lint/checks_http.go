package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkHTTPTimeout requires every http.Server composite literal to set
// ReadTimeout (or ReadHeaderTimeout) and WriteTimeout, and bans the
// package-level http.ListenAndServe / ListenAndServeTLS shortcuts,
// which construct a Server with neither. The serving layer (PR 7) put
// HTTP servers on the hot path: a server without timeouts lets one
// stalled client pin a connection (and its read goroutine) forever —
// the HTTP mirror of the net-deadline invariant for raw conns.
func checkHTTPTimeout() *Check {
	const name = "http-timeout"
	return &Check{
		Name: name,
		Doc: "require ReadTimeout/ReadHeaderTimeout and WriteTimeout on every " +
			"http.Server literal and ban package-level http.ListenAndServe*; " +
			"a timeout-less server lets a stalled client hold a connection forever",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.CompositeLit:
						if !isHTTPServerType(pkg, e) {
							return true
						}
						keys := map[string]bool{}
						for _, el := range e.Elts {
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								if id, ok := kv.Key.(*ast.Ident); ok {
									keys[id.Name] = true
								}
							}
						}
						var missing []string
						if !keys["ReadTimeout"] && !keys["ReadHeaderTimeout"] {
							missing = append(missing, "ReadTimeout")
						}
						if !keys["WriteTimeout"] {
							missing = append(missing, "WriteTimeout")
						}
						if len(missing) > 0 {
							out = append(out, diag(pkg, name, e.Pos(),
								"http.Server literal missing %s: a stalled client would hold its connection forever", strings.Join(missing, " and ")))
						}
					case *ast.CallExpr:
						if fn := httpPackageFunc(pkg, e); fn == "ListenAndServe" || fn == "ListenAndServeTLS" {
							out = append(out, diag(pkg, name, e.Pos(),
								"http.%s builds a Server with no timeouts; construct an http.Server literal with ReadTimeout and WriteTimeout instead", fn))
						}
					}
					return true
				})
			}
			return out
		},
	}
}

// isHTTPServerType reports whether lit's static type is net/http.Server.
func isHTTPServerType(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Server" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// httpPackageFunc returns the name of the net/http package-level
// function call.Fun resolves to, or "". Methods (srv.ListenAndServe)
// have a receiver and are not reported — a constructed Server is
// exactly what the check steers callers toward.
func httpPackageFunc(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}
