package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"strconv"
	"strings"
)

// A Fact is one bit of the per-function lattice the interprocedural
// checks consume. Facts are violation-grade: a site only contributes a
// fact when the corresponding direct check would flag it (scope
// exemptions respected) and no //lint:ignore directive waives it — a
// sanctioned clock read in internal/obs or a waived telemetry read in
// a Step method is not a fact, so it does not cascade into every
// transitive caller.
type Fact uint8

const (
	// FactMutatesReceiver: a method writes state reachable from its
	// receiver. Propagates only through receiver-rooted call edges
	// (s.helper() from a method on s), because only then does the
	// callee's receiver alias the caller's.
	FactMutatesReceiver Fact = iota
	// FactSpawnsGoroutine: a raw go statement outside internal/pool.
	FactSpawnsGoroutine
	// FactReadsWallClock: time.Now/time.Since in internal/* outside
	// the clock-owning internal/obs and internal/bench.
	FactReadsWallClock
	// FactUnseededRand: a math/rand (or /v2) reference in internal/*
	// outside internal/rng.
	FactUnseededRand
	// FactRawWrite: os.Create/os.WriteFile/os.Rename outside
	// internal/atomicfile.
	FactRawWrite
	// FactAccumulatesFloats: the function accumulates floats into
	// state that outlives the call (receiver fields, pointer/slice/map
	// parameters, package-level variables) — feeding it map-ordered
	// values makes the sum order-dependent. Unlike the others this
	// fact is not itself a violation; it only arms map-order-taint.
	FactAccumulatesFloats

	numFacts
)

var factNames = [numFacts]string{
	"mutates-receiver",
	"spawns-goroutine",
	"reads-wall-clock",
	"uses-unseeded-rand",
	"performs-raw-write",
	"accumulates-floats",
}

func (f Fact) String() string { return factNames[f] }

// A FactSet is a bitmask over the facts.
type FactSet uint8

func (s FactSet) Has(f Fact) bool        { return s&(1<<f) != 0 }
func (s *FactSet) Add(f Fact)            { *s |= 1 << f }
func (s FactSet) Without(f Fact) FactSet { return s &^ (1 << f) }

func (s FactSet) String() string {
	var parts []string
	for f := Fact(0); f < numFacts; f++ {
		if s.Has(f) {
			parts = append(parts, factNames[f])
		}
	}
	return strings.Join(parts, ",")
}

// Scope predicates shared by the direct checks and the fact extractor:
// the set of packages where each invariant applies. Keeping them in one
// place guarantees a fact is assigned exactly where the direct check
// would fire.

func wallClockInScope(ip string) bool {
	return pathHasSeg(ip, "internal") &&
		!pathHasSeg(ip, "internal/obs") && !pathHasSeg(ip, "internal/bench")
}

func mathRandInScope(ip string) bool {
	return pathHasSeg(ip, "internal") && !pathHasSeg(ip, "internal/rng")
}

func rawGoroutineInScope(ip string) bool {
	return !pathHasSeg(ip, "internal/pool")
}

func atomicWriteInScope(ip string) bool {
	return !pathHasSeg(ip, "internal/atomicfile")
}

// computeFacts extracts each function's local facts, then propagates
// them over the call graph to fixpoint. The iteration is deterministic
// (functions in position order, call sites in source order), so the
// `via` back-pointers — and therefore the chains printed in
// diagnostics — are stable across runs. Recursion and mutual recursion
// converge because the lattice is finite and propagation is monotone.
func computeFacts(prog *Program) {
	sups := make(map[*Package]*suppressor)
	for _, pkg := range prog.Pkgs {
		sups[pkg] = newSuppressor(collectIgnores(pkg))
	}
	for _, fi := range prog.sorted {
		localFacts(fi, sups[fi.Pkg])
		fi.Trans = fi.Local
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.sorted {
			for _, cs := range fi.Calls {
				for _, callee := range cs.Callees {
					add := callee.Trans
					if !cs.RecvRooted {
						add = add.Without(FactMutatesReceiver)
					}
					add &^= fi.Trans
					if add != 0 {
						fi.Trans |= add
						for f := Fact(0); f < numFacts; f++ {
							if add.Has(f) {
								fi.via[f] = callee
							}
						}
						changed = true
					}
				}
			}
		}
	}
}

// waivedAt reports whether a //lint:ignore directive for check covers
// the site at pos.
func waivedAt(pkg *Package, sup *suppressor, check string, pos token.Pos) bool {
	p := pkg.Fset.Position(pos)
	_, ok := sup.peek(Diagnostic{Check: check, File: p.Filename, Line: p.Line})
	return ok
}

// localFacts scans fi's body (closures included — they are attributed
// lexically) and records the facts its own statements contribute.
func localFacts(fi *FuncInfo, sup *suppressor) {
	pkg := fi.Pkg
	ip := pkg.ImportPath
	params := paramObjects(pkg, fi.Decl)

	// A waiver on the math/rand import covers every use in the file,
	// mirroring how the direct check reports at the import site.
	randImportWaived := false
	for _, imp := range fi.File.Imports {
		if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
			(path == "math/rand" || path == "math/rand/v2") &&
			waivedAt(pkg, sup, "math-rand", imp.Pos()) {
			randImportWaived = true
		}
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			if rawGoroutineInScope(ip) && !waivedAt(pkg, sup, "raw-goroutine", e.Pos()) {
				fi.Local.Add(FactSpawnsGoroutine)
			}
		case *ast.SelectorExpr:
			if wallClockInScope(ip) && isPkgSel(pkg, e, "time", "Now", "Since") &&
				!waivedAt(pkg, sup, "wall-clock", e.Pos()) {
				fi.Local.Add(FactReadsWallClock)
			}
			if atomicWriteInScope(ip) && isPkgSel(pkg, e, "os", "Create", "WriteFile", "Rename") &&
				!waivedAt(pkg, sup, "atomic-write", e.Pos()) {
				fi.Local.Add(FactRawWrite)
			}
			if mathRandInScope(ip) && !randImportWaived && !waivedAt(pkg, sup, "math-rand", e.Pos()) {
				if id, ok := e.X.(*ast.Ident); ok {
					if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
						p := pn.Imported().Path()
						if p == "math/rand" || p == "math/rand/v2" {
							fi.Local.Add(FactUnseededRand)
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if len(fi.Recv) > 0 && receiverRootedWrite(pkg, lhs, fi.Recv) &&
					!waivedAt(pkg, sup, "readonly-forward", lhs.Pos()) {
					fi.Local.Add(FactMutatesReceiver)
				}
				if isFloatAccum(pkg, e, i) && persistentTarget(pkg, lhs, fi.Recv, params) {
					fi.Local.Add(FactAccumulatesFloats)
				}
			}
		case *ast.IncDecStmt:
			if len(fi.Recv) > 0 && receiverRootedWrite(pkg, e.X, fi.Recv) &&
				!waivedAt(pkg, sup, "readonly-forward", e.X.Pos()) {
				fi.Local.Add(FactMutatesReceiver)
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
					if len(fi.Recv) > 0 && receiverRootedWrite(pkg, e.Args[0], fi.Recv) &&
						!waivedAt(pkg, sup, "readonly-forward", e.Pos()) {
						fi.Local.Add(FactMutatesReceiver)
					}
				}
			}
		}
		return true
	})
}

// isFloatAccum reports whether the i-th assignment target of as is a
// float accumulation: an op-assign (+= -= *= /=) or a self-referential
// plain assignment (x = x + v).
func isFloatAccum(pkg *Package, as *ast.AssignStmt, i int) bool {
	lhs := as.Lhs[i]
	if !isFloatType(pkg.Info.TypeOf(lhs)) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		return len(as.Lhs) == len(as.Rhs) && exprContains(as.Rhs[i], lhs)
	}
	return false
}

// paramObjects collects the objects bound to fd's parameter names.
func paramObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, nm := range field.Names {
			if obj := pkg.Info.Defs[nm]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}

// persistentTarget reports whether the accumulation target outlives the
// call: receiver-rooted state, storage reached through a parameter
// (pointer/slice/map indirection), or a package-level variable. A plain
// local accumulator is invisible to callers and contributes no fact.
func persistentTarget(pkg *Package, lhs ast.Expr, recv, params map[types.Object]bool) bool {
	if len(recv) > 0 && receiverRootedWrite(pkg, lhs, recv) {
		return true
	}
	depth := 0
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			depth++
			expr = e.X
		case *ast.SelectorExpr:
			depth++
			expr = e.X
		case *ast.IndexExpr:
			depth++
			expr = e.X
		case *ast.Ident:
			obj := pkg.Info.Uses[e]
			if obj == nil {
				return false
			}
			if params[obj] {
				return depth > 0
			}
			// Package-level accumulator.
			if v, ok := obj.(*types.Var); ok && v.Parent() == pkg.Types.Scope() {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// launderedCalls implements the transitive half of the syntactic bans
// (wall-clock, math-rand, raw-goroutine, atomic-write): inside every
// function of an in-scope package, a call whose callee transitively
// carries fact is flagged with the chain from the caller down to the
// fact's origin. Because facts are violation-grade, a sanctioned or
// waived origin contributes nothing — the chain always ends at a site
// the direct check would flag, making the laundering auditable without
// cascading through the existing waivers.
func launderedCalls(prog *Program, pkg *Package, check string, fact Fact, what string) []Diagnostic {
	var out []Diagnostic
	for _, fi := range prog.sorted {
		if fi.Pkg != pkg {
			continue
		}
		for _, cs := range fi.Calls {
			for _, callee := range cs.Callees {
				if !callee.Trans.Has(fact) {
					continue
				}
				chain := append([]string{fi.DisplayName()}, prog.Chain(callee, fact)...)
				out = append(out, chainDiag(pkg, check, cs.Pos, chain,
					"call to %s %s", callee.DisplayName(), what))
			}
		}
	}
	return out
}

// WriteFacts renders the transitive fact table (repolint -facts): every
// function carrying at least one fact, in position order, with the
// acquisition chain for facts that arrived from a callee.
func (p *Program) WriteFacts(w io.Writer, modRoot string) {
	n := 0
	for _, fi := range p.sorted {
		if fi.Trans == 0 {
			continue
		}
		n++
		pos := fi.Pkg.Fset.Position(fi.Decl.Pos())
		fmt.Fprintf(w, "%s:%d: %s:", relTo(modRoot, pos.Filename), pos.Line, fi.DisplayName())
		for f := Fact(0); f < numFacts; f++ {
			if !fi.Trans.Has(f) {
				continue
			}
			if fi.Local.Has(f) {
				fmt.Fprintf(w, " %s", f)
			} else {
				fmt.Fprintf(w, " %s(%s)", f, strings.Join(p.Chain(fi, f), " → "))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "repolint: %d function(s) carry facts\n", n)
}
