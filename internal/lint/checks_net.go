package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkNetDeadline requires every Read or Write on a net connection to
// be preceded, within the same enclosing function, by a SetDeadline /
// SetReadDeadline / SetWriteDeadline call. The distributed training
// coordinator's fault tolerance (PR 6) rests on the invariant that no
// network I/O can block forever: a worker crash must surface as a
// deadline error the retry/respawn machinery handles, not as a hung
// training run. The check is lexical within one function body — the
// deadline call must appear before the I/O call — which matches how
// the dist package structures every conn operation.
func checkNetDeadline() *Check {
	const name = "net-deadline"
	return &Check{
		Name: name,
		Doc: "require a SetDeadline/SetReadDeadline/SetWriteDeadline call " +
			"before any Read/Write on a net connection in the same function; " +
			"unbounded network I/O turns a peer crash into a hung run",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						out = append(out, netDeadlineInFunc(pkg, name, body)...)
					}
					// Keep descending: nested function literals are
					// analyzed as their own scopes when the walk
					// reaches them.
					return true
				})
			}
			return out
		},
	}
}

// netDeadlineInFunc scans one function body (excluding nested function
// literals, which get their own scan) and reports net Read/Write calls
// with no lexically preceding deadline call.
func netDeadlineInFunc(pkg *Package, name string, body *ast.BlockStmt) []Diagnostic {
	type rwCall struct {
		pos  token.Pos
		verb string
	}
	var calls []rwCall
	var deadlines []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			// Any receiver counts: conns, listeners, and wrappers that
			// forward to one.
			deadlines = append(deadlines, call.Pos())
		case "Read", "Write":
			if isNetType(pkg, sel.X) {
				calls = append(calls, rwCall{pos: call.Pos(), verb: sel.Sel.Name})
			}
		}
		return true
	})
	var out []Diagnostic
	for _, c := range calls {
		covered := false
		for _, d := range deadlines {
			if d < c.pos {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, diag(pkg, name, c.pos,
				"%s on a net connection with no preceding SetDeadline in this function: a dead peer would hang the run instead of failing fast", c.verb))
		}
	}
	return out
}

// isNetType reports whether e's static type is a named type (or pointer
// to one) declared in package net — net.Conn, *net.TCPConn, and
// friends. Resolution goes through the type checker, so io.Reader
// wrappers and os.File (which also has SetDeadline) are not flagged.
func isNetType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}
