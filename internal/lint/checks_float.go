package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkFloatEquality flags == and != between floating-point operands
// (and switch statements over a float tag, which compare with == per
// case). Exact float equality is almost always a rounding-sensitive
// bug — PR 2 removed kernel zero-skip shortcuts for exactly this
// reason — and the rare deliberate uses (sentinel values, NaN-by-
// self-comparison) must carry an annotation saying so.
func checkFloatEquality() *Check {
	const name = "float-equality"
	return &Check{
		Name: name,
		Doc: "flag ==/!= on float operands outside tests; compare against a " +
			"tolerance or use math.IsNaN, and annotate deliberate sentinel checks",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.BinaryExpr:
						if e.Op != token.EQL && e.Op != token.NEQ {
							return true
						}
						if !isFloatType(pkg.Info.TypeOf(e.X)) && !isFloatType(pkg.Info.TypeOf(e.Y)) {
							return true
						}
						// A comparison folded entirely at compile time
						// cannot be a runtime rounding hazard.
						if isConst(pkg, e.X) && isConst(pkg, e.Y) {
							return true
						}
						out = append(out, diag(pkg, name, e.OpPos,
							"exact float comparison (%s): use a tolerance, math.IsNaN, or annotate the sentinel", e.Op))
					case *ast.SwitchStmt:
						if e.Tag != nil && isFloatType(pkg.Info.TypeOf(e.Tag)) {
							out = append(out, diag(pkg, name, e.Tag.Pos(),
								"switch over a float compares each case with ==: use explicit tolerance comparisons"))
						}
					}
					return true
				})
			}
			return out
		},
	}
}

func isConst(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// checkMapOrderFloat flags `range` over a map whose body accumulates
// into a floating-point variable declared outside the loop. Go
// randomizes map iteration order, and float addition is not
// associative, so the accumulated value differs bit-for-bit between
// runs — the exact nondeterminism class PR 4 had to find by hand in the
// ALSH active-set union.
func checkMapOrderFloat() *Check {
	const name = "map-order-float"
	return &Check{
		Name: name,
		Doc: "flag range-over-map bodies that accumulate into a float: map " +
			"order is randomized and float addition is not associative, so " +
			"extract and sort the keys first",
		Run: func(_ *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := pkg.Info.TypeOf(rs.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					ast.Inspect(rs.Body, func(m ast.Node) bool {
						as, ok := m.(*ast.AssignStmt)
						if !ok {
							return true
						}
						switch as.Tok {
						case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
							lhs := as.Lhs[0]
							if isFloatType(pkg.Info.TypeOf(lhs)) && outsideLoop(pkg, lhs, rs) {
								out = append(out, diag(pkg, name, as.Pos(),
									"float accumulation in map-order iteration: result depends on randomized map order"))
							}
						case token.ASSIGN:
							if len(as.Lhs) != len(as.Rhs) {
								return true
							}
							for i, lhs := range as.Lhs {
								if isFloatType(pkg.Info.TypeOf(lhs)) && outsideLoop(pkg, lhs, rs) &&
									exprContains(as.Rhs[i], lhs) {
									out = append(out, diag(pkg, name, as.Pos(),
										"float accumulation in map-order iteration: result depends on randomized map order"))
								}
							}
						}
						return true
					})
					return true
				})
			}
			return out
		},
	}
}

// outsideLoop reports whether the accumulation target lhs refers to
// storage declared outside the range statement; a fresh local per
// iteration cannot observe iteration order.
func outsideLoop(pkg *Package, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id := rootIdent(lhs)
	if id == nil {
		// Selector/index through something non-identifier: assume
		// longer-lived than the loop body.
		return true
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// exprContains reports whether some subexpression of hay is
// structurally identical (by printed form) to needle.
func exprContains(hay, needle ast.Expr) bool {
	want := types.ExprString(needle)
	found := false
	ast.Inspect(hay, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
			return false
		}
		return true
	})
	return found
}
