package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes standard-library type-checking across the
// fixture subtests; fixtures get distinct synthetic import paths so the
// package cache never collides.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture type-checks testdata/src/<dir> under the given synthetic
// import path, so a fixture can be placed inside or outside any check's
// scope.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", dir, importPath, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors (diagnostics would be unreliable): %v", dir, pkg.TypeErrors)
	}
	return pkg
}

// renderResult is the canonical golden form: unsuppressed diagnostics
// first, then the suppressed ones with their recorded reasons.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, d := range res.Diagnostics {
		b.WriteString(d.String() + "\n")
	}
	for _, d := range res.Suppressed {
		fmt.Fprintf(&b, "suppressed: %s (%s)\n", d.String(), d.SuppressReason)
	}
	if b.Len() == 0 {
		return "no diagnostics\n"
	}
	return b.String()
}

// TestGoldenFixtures runs the full analyzer suite over every fixture
// package — each check's known-bad code, plus the same code re-homed
// into the package that owns the corresponding exemption — and compares
// against golden files. Regenerate with REPOLINT_GOLDEN_UPDATE=1,
// matching the journal/trace golden convention.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		name string // also the golden file stem
		dir  string // fixture directory under testdata/src
		path string // synthetic import path (controls check scoping)
	}{
		{"mathrand", "mathrand", "samplednn/internal/fixture/mathrand"},
		{"mathrand_exempt_rng", "mathrand", "samplednn/internal/rng/fixture"},
		{"mathrand_exempt_cmd", "mathrand", "samplednn/cmd/fixture"},
		{"wallclock", "wallclock", "samplednn/internal/fixture/wallclock"},
		{"wallclock_exempt_obs", "wallclock", "samplednn/internal/obs/fixture"},
		{"wallclock_exempt_bench", "wallclock", "samplednn/internal/bench/fixture"},
		{"rawgoroutine", "rawgoroutine", "samplednn/internal/fixture/rawgoroutine"},
		{"rawgoroutine_exempt_pool", "rawgoroutine", "samplednn/internal/pool/fixture"},
		{"netdeadline", "netdeadline", "samplednn/internal/fixture/netdeadline"},
		{"httptimeout", "httptimeout", "samplednn/internal/fixture/httptimeout"},
		{"atomicwrite", "atomicwrite", "samplednn/internal/fixture/atomicwrite"},
		{"atomicwrite_exempt", "atomicwrite", "samplednn/internal/atomicfile/fixture"},
		{"readonlyforward", "readonlyforward", "samplednn/internal/fixture/readonlyforward"},
		{"floateq", "floateq", "samplednn/internal/fixture/floateq"},
		{"maporderfloat", "maporderfloat", "samplednn/internal/fixture/maporderfloat"},
		{"ulpbound", "ulpbound", "samplednn/internal/fixture/ulpbound"},
		{"ulpbound_exempt_tensor", "ulpbound", "samplednn/internal/tensor/fixture"},
		{"suppress", "suppress", "samplednn/internal/fixture/suppress"},
		{"obsctx", "obsctx", "samplednn/internal/dist/fixture"},
		{"obsctx_serve", "obsctx", "samplednn/internal/serve/fixture"},
		{"obsctx_exempt", "obsctx", "samplednn/internal/fixture/obsctx"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.path)
			res := Run(filepath.Join("testdata", "src"), []*Package{pkg}, Checks())
			got := renderResult(res)
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if os.Getenv("REPOLINT_GOLDEN_UPDATE") == "1" {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (REPOLINT_GOLDEN_UPDATE=1 regenerates): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from golden %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestEveryCheckHasBadFixture pins the acceptance requirement directly:
// each analyzer in the suite fires on at least one known-bad fixture.
func TestEveryCheckHasBadFixture(t *testing.T) {
	fired := map[string]bool{}
	// Each fixture loads under the import path where its check applies;
	// scoped checks (obs-ctx) need an in-scope path, the rest use the
	// neutral fixture prefix.
	fixtures := []struct{ dir, path string }{
		{"mathrand", "samplednn/internal/fixture/mathrand"},
		{"wallclock", "samplednn/internal/fixture/wallclock"},
		{"rawgoroutine", "samplednn/internal/fixture/rawgoroutine"},
		{"netdeadline", "samplednn/internal/fixture/netdeadline"},
		{"httptimeout", "samplednn/internal/fixture/httptimeout"},
		{"atomicwrite", "samplednn/internal/fixture/atomicwrite"},
		{"readonlyforward", "samplednn/internal/fixture/readonlyforward"},
		{"floateq", "samplednn/internal/fixture/floateq"},
		{"maporderfloat", "samplednn/internal/fixture/maporderfloat"},
		{"ulpbound", "samplednn/internal/fixture/ulpbound"},
		{"obsctx", "samplednn/internal/dist/fixture"},
	}
	for _, fx := range fixtures {
		pkg := loadFixture(t, fx.dir, fx.path)
		res := Run("", []*Package{pkg}, Checks())
		for _, d := range res.Diagnostics {
			fired[d.Check] = true
		}
	}
	for _, c := range Checks() {
		if !fired[c.Name] {
			t.Errorf("check %s never fired on any known-bad fixture", c.Name)
		}
	}
}

// TestRepositoryIsLintClean runs the real suite over the real module:
// the tree must carry zero unsuppressed diagnostics at all times, so a
// violating change fails `go test` even before make tier1 invokes the
// repolint binary.
func TestRepositoryIsLintClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("type error in %s: %v", p.ImportPath, terr)
		}
	}
	res := Run(l.ModRoot, pkgs, Checks())
	for _, d := range res.Diagnostics {
		t.Errorf("unsuppressed diagnostic: %s", d)
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
}
