package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes standard-library type-checking across the
// fixture subtests; fixtures get distinct synthetic import paths so the
// package cache never collides.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture type-checks testdata/src/<dir> under the given synthetic
// import path, so a fixture can be placed inside or outside any check's
// scope.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", dir, importPath, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors (diagnostics would be unreliable): %v", dir, pkg.TypeErrors)
	}
	return pkg
}

// renderResult is the canonical golden form: unsuppressed diagnostics
// first, then the suppressed ones with their recorded reasons.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, d := range res.Diagnostics {
		b.WriteString(d.String() + "\n")
	}
	for _, d := range res.Suppressed {
		fmt.Fprintf(&b, "suppressed: %s (%s)\n", d.String(), d.SuppressReason)
	}
	if b.Len() == 0 {
		return "no diagnostics\n"
	}
	return b.String()
}

// goldenCases is the shared fixture table: TestGoldenFixtures pins each
// case's full output, and TestEveryCheckHasBadFixture unions the diag
// kinds fired across all of them. Adding a check therefore requires
// adding a fixture here, or the coverage test fails.
var goldenCases = []struct {
	name string // also the golden file stem
	dir  string // fixture directory under testdata/src
	path string // synthetic import path (controls check scoping)
}{
	{"mathrand", "mathrand", "samplednn/internal/fixture/mathrand"},
	{"mathrand_exempt_rng", "mathrand", "samplednn/internal/rng/fixture"},
	{"mathrand_exempt_cmd", "mathrand", "samplednn/cmd/fixture"},
	{"wallclock", "wallclock", "samplednn/internal/fixture/wallclock"},
	{"wallclock_exempt_obs", "wallclock", "samplednn/internal/obs/fixture"},
	{"wallclock_exempt_bench", "wallclock", "samplednn/internal/bench/fixture"},
	{"rawgoroutine", "rawgoroutine", "samplednn/internal/fixture/rawgoroutine"},
	{"rawgoroutine_exempt_pool", "rawgoroutine", "samplednn/internal/pool/fixture"},
	{"netdeadline", "netdeadline", "samplednn/internal/fixture/netdeadline"},
	{"httptimeout", "httptimeout", "samplednn/internal/fixture/httptimeout"},
	{"atomicwrite", "atomicwrite", "samplednn/internal/fixture/atomicwrite"},
	{"atomicwrite_exempt", "atomicwrite", "samplednn/internal/atomicfile/fixture"},
	{"readonlyforward", "readonlyforward", "samplednn/internal/fixture/readonlyforward"},
	{"readonlychain", "readonlychain", "samplednn/internal/fixture/readonlychain"},
	{"launder", "launder", "samplednn/internal/fixture/launder"},
	{"floateq", "floateq", "samplednn/internal/fixture/floateq"},
	{"maporderfloat", "maporderfloat", "samplednn/internal/fixture/maporderfloat"},
	{"maportaint", "maportaint", "samplednn/internal/fixture/maportaint"},
	{"ulpbound", "ulpbound", "samplednn/internal/fixture/ulpbound"},
	{"ulpbound_exempt_tensor", "ulpbound", "samplednn/internal/tensor/fixture"},
	{"suppress", "suppress", "samplednn/internal/fixture/suppress"},
	{"suppressedge", "suppressedge", "samplednn/internal/fixture/suppressedge"},
	{"unuseddirective", "unuseddirective", "samplednn/internal/fixture/unuseddirective"},
	{"obsctx", "obsctx", "samplednn/internal/dist/fixture"},
	{"obsctx_serve", "obsctx", "samplednn/internal/serve/fixture"},
	{"obsctx_exempt", "obsctx", "samplednn/internal/fixture/obsctx"},
}

// TestGoldenFixtures runs the full analyzer suite over every fixture
// package — each check's known-bad code, plus the same code re-homed
// into the package that owns the corresponding exemption — and compares
// against golden files. Regenerate with REPOLINT_GOLDEN_UPDATE=1,
// matching the journal/trace golden convention.
func TestGoldenFixtures(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.path)
			res := Run(filepath.Join("testdata", "src"), []*Package{pkg}, Checks())
			got := renderResult(res)
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if os.Getenv("REPOLINT_GOLDEN_UPDATE") == "1" {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (REPOLINT_GOLDEN_UPDATE=1 regenerates): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from golden %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestEveryCheckHasBadFixture pins the acceptance requirement directly:
// every diag kind the runner can emit — each analyzer in Checks() plus
// the runner's own pseudo-kinds (lint-directive for malformed waivers,
// unused-directive for stale ones) — fires on at least one fixture in
// the shared goldenCases table. A new check without a known-bad
// fixture fails here automatically.
func TestEveryCheckHasBadFixture(t *testing.T) {
	fired := map[string]bool{}
	for _, tc := range goldenCases {
		pkg := loadFixture(t, tc.dir, tc.path)
		res := Run("", []*Package{pkg}, Checks())
		for _, d := range res.Diagnostics {
			fired[d.Check] = true
		}
	}
	want := []string{"lint-directive", "unused-directive"}
	for _, c := range Checks() {
		want = append(want, c.Name)
	}
	for _, name := range want {
		if !fired[name] {
			t.Errorf("diag kind %s never fired on any known-bad fixture", name)
		}
	}
}

// TestTransitiveReadonlyChain pins the headline interprocedural case in
// code (not just goldens): ApproxForward calling a mutating helper two
// hops away is flagged, and the diagnostic carries the full call chain.
func TestTransitiveReadonlyChain(t *testing.T) {
	pkg := loadFixture(t, "readonlychain", "samplednn/internal/fixture/readonlychain")
	res := Run("", []*Package{pkg}, Checks())
	found := false
	for _, d := range res.Diagnostics {
		if d.Check != "readonly-forward" {
			continue
		}
		if len(d.Chain) >= 3 && d.Chain[0] == "ApproxForward" &&
			strings.Contains(d.Chain[1], "gatherCols") && strings.Contains(d.Chain[2], "markVisited") {
			found = true
			if !strings.Contains(d.Message, "ApproxForward → (*Sampler).gatherCols → (*Sampler).markVisited") {
				t.Errorf("chain not rendered in message: %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("no readonly-forward diagnostic with chain ApproxForward → gatherCols → markVisited; got %v", res.Diagnostics)
	}
}

// TestRepositoryIsLintClean runs the real suite over the real module:
// the tree must carry zero unsuppressed diagnostics at all times, so a
// violating change fails `go test` even before make tier1 invokes the
// repolint binary.
func TestRepositoryIsLintClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("type error in %s: %v", p.ImportPath, terr)
		}
	}
	res := Run(l.ModRoot, pkgs, Checks())
	for _, d := range res.Diagnostics {
		t.Errorf("unsuppressed diagnostic: %s", d)
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
}
