package lint

import "testing"

func TestPathHasSeg(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"samplednn/internal/rng", "internal/rng", true},
		{"samplednn/internal/rng/sub", "internal/rng", true},
		{"samplednn/internal/rngx", "internal/rng", false},
		{"samplednn/internal/obs/trace", "internal/obs", true},
		{"samplednn/cmd/mlptrain", "internal", false},
		{"internal/pool", "internal/pool", true},
	}
	for _, c := range cases {
		if got := pathHasSeg(c.path, c.seg); got != c.want {
			t.Errorf("pathHasSeg(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}

func TestCheckByName(t *testing.T) {
	for _, c := range Checks() {
		got := CheckByName(c.Name)
		if got == nil || got.Name != c.Name {
			t.Errorf("CheckByName(%q) did not round-trip", c.Name)
		}
	}
	if CheckByName("no-such-check") != nil {
		t.Error("CheckByName of unknown name must be nil")
	}
}

func TestCheckNamesStable(t *testing.T) {
	// //lint:ignore directives in the tree reference these names; renaming
	// a check silently un-suppresses every waiver for it.
	want := []string{"math-rand", "wall-clock", "raw-goroutine", "net-deadline",
		"http-timeout", "atomic-write", "readonly-forward", "float-equality",
		"map-order-float", "map-order-taint", "ulp-bound", "obs-ctx"}
	got := Checks()
	if len(got) != len(want) {
		t.Fatalf("suite has %d checks, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Name != want[i] {
			t.Errorf("check %d = %q, want %q", i, c.Name, want[i])
		}
		if c.Doc == "" {
			t.Errorf("check %q has no doc", c.Name)
		}
	}
}
