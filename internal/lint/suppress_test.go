package lint

import (
	"strings"
	"testing"
)

// TestSuppressEdgeCases pins the suppression corner cases on the
// suppressedge fixture: a file-ignore and a line-ignore for the same
// check in one file (file-wide wins, the line form is stale), a
// trailing directive sharing its line with the offending code, and a
// directive on the literal last line of a file.
func TestSuppressEdgeCases(t *testing.T) {
	pkg := loadFixture(t, "suppressedge", "samplednn/internal/fixture/suppressedge")
	res := Run("", []*Package{pkg}, Checks())

	// Both violations are waived: nothing kept except the stale-line
	// report below.
	for _, d := range res.Diagnostics {
		if d.Check == "float-equality" || d.Check == "wall-clock" {
			t.Errorf("waived diagnostic leaked: %s", d)
		}
	}

	suppressed := map[string]string{}
	for _, d := range res.Suppressed {
		suppressed[d.Check] = d.SuppressReason
	}
	// File-wide beats the redundant line directive: the recorded reason
	// must be the file-ignore's.
	if r := suppressed["float-equality"]; !strings.Contains(r, "file-wide waiver") {
		t.Errorf("float-equality must be suppressed by the file-ignore, got reason %q", r)
	}
	// Trailing directive on the last line of the file, on a line that
	// also carries code.
	if r := suppressed["wall-clock"]; !strings.Contains(r, "last line of the file") {
		t.Errorf("wall-clock must be suppressed by the trailing last-line directive, got reason %q", r)
	}

	// The redundant line directive suppressed nothing and is reported
	// stale; the two directives that did fire are not.
	var unused []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Check == "unused-directive" {
			unused = append(unused, d)
		}
	}
	if len(unused) != 1 {
		t.Fatalf("want exactly 1 unused-directive, got %v", unused)
	}
	if d := unused[0]; !strings.Contains(d.File, "edge1.go") || !strings.Contains(d.Message, "float-equality") {
		t.Errorf("unused-directive must point at edge1.go's redundant line directive, got %s", d)
	}
}

// TestSuppressorUsageTracking pins the used-flag mechanics directly:
// peek must not consume a directive, match must.
func TestSuppressorUsageTracking(t *testing.T) {
	dirs := []ignoreDirective{
		{File: "f.go", Line: 3, Check: "wall-clock", Reason: "r", FileWide: false},
	}
	sup := newSuppressor(dirs)
	d := Diagnostic{Check: "wall-clock", File: "f.go", Line: 3}

	if _, ok := sup.peek(d); !ok {
		t.Fatal("peek must see the directive")
	}
	if dirs[0].used {
		t.Error("peek must not mark the directive used")
	}
	if _, ok := sup.match(d); !ok {
		t.Fatal("match must see the directive")
	}
	if !dirs[0].used {
		t.Error("match must mark the directive used")
	}

	// Line-above form: a diagnostic on line 4 is covered by the
	// directive on line 3.
	if _, ok := sup.peek(Diagnostic{Check: "wall-clock", File: "f.go", Line: 4}); !ok {
		t.Error("directive must cover the line below it")
	}
	if _, ok := sup.peek(Diagnostic{Check: "wall-clock", File: "f.go", Line: 5}); ok {
		t.Error("directive must not cover two lines below")
	}
	if _, ok := sup.peek(Diagnostic{Check: "math-rand", File: "f.go", Line: 3}); ok {
		t.Error("directive must not cover a different check")
	}
}
