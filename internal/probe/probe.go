// Package probe measures error compounding in sampled feedforward
// passes, live, against the paper's §7 theory. Theorem 7.2 predicts that
// a network of depth k whose every layer drops a (1/(c+1)) mass fraction
// of its inner products accumulates a relative output error of
// ((c+1)/c)^k − 1: each layer multiplies the surviving error by the
// amplification factor (c+1)/c. The theorem is an upper-bound argument
// over a simplified model; whether real training runs track it is
// exactly what the probe checks.
//
// Every Every batches the probe replays the method's approximate forward
// pass (core.ApproxForwarder) and the exact forward side by side on one
// fixed minibatch, and reports per-layer relative errors, the fitted
// per-layer growth factor, and the theory curve for comparison. The
// probe owns its RNG stream, and ApproxForward implementations are
// read-only, so enabling the probe does not change the trained weights
// by a single bit.
package probe

import (
	"math"

	"samplednn/internal/core"
	"samplednn/internal/nn"
	"samplednn/internal/obs/trace"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/theory"
)

// Measurement is one side-by-side comparison of the approximate and
// exact forward passes on the probe minibatch.
type Measurement struct {
	// Batch is the cumulative batch count at which the probe fired
	// (1-based, counted across epochs).
	Batch int `json:"batch"`
	// RelErr[ℓ] is ‖ĥ_ℓ − h_ℓ‖_F / ‖h_ℓ‖_F: layer ℓ's approximate
	// activation error relative to the exact activation.
	RelErr []float64 `json:"rel_err"`
	// ErrRatio[ℓ] is ‖h_ℓ − ĥ_ℓ‖_F / ‖ĥ_ℓ‖_F — the §7 "error ratio",
	// measured against the approximate value the way the theory states
	// it (for one layer it equals 1/c).
	ErrRatio []float64 `json:"err_ratio"`
	// MeanC is the empirical active/inactive mass ratio c implied by the
	// first layer's error ratio (c = 1/ErrRatio[0]); +Inf when the first
	// layer came out exact.
	MeanC float64 `json:"mean_c"`
	// Growth is the fitted per-layer error growth factor: the slope of
	// log(1 + RelErr[ℓ]) against layer depth, exponentiated. Theorem 7.2
	// predicts Growth ≈ (c+1)/c when every layer drops the same mass.
	Growth float64 `json:"growth"`
	// Theory[ℓ] is theory.ErrorRatio(MeanC, ℓ+1): the §7 prediction for
	// the cumulative error ratio after ℓ+1 approximated layers, derived
	// from the measured first-layer c. Empty when MeanC is not finite.
	Theory []float64 `json:"theory,omitempty"`
}

// Probe fires a measurement every Every batches. A nil *Probe is a
// no-op: Tick returns (nil, false) after one nil check, so the trainer
// holds a *Probe unconditionally and pays nothing when disabled.
type Probe struct {
	af    core.ApproxForwarder
	net   *nn.Network
	x     *tensor.Matrix
	g     *rng.RNG
	every int
	batch int
}

// New builds a probe over the method's approximate forward pass, firing
// every `every` batches on the fixed minibatch x. It returns nil when
// the method does not implement core.ApproxForwarder (exact training has
// no approximation to probe), when every <= 0, or when x is empty —
// callers use the nil probe as the disabled state.
func New(m core.Method, x *tensor.Matrix, every int, seed uint64) *Probe {
	af, ok := m.(core.ApproxForwarder)
	if !ok || every <= 0 || x == nil || x.Rows == 0 {
		return nil
	}
	return &Probe{af: af, net: m.Net(), x: x, g: rng.New(seed), every: every}
}

// Tick advances the batch counter and, when the cadence fires, runs one
// measurement. On non-firing batches (and on a nil probe) it does no
// work and no allocation.
func (p *Probe) Tick() (*Measurement, bool) {
	if p == nil {
		return nil, false
	}
	p.batch++
	if p.batch%p.every != 0 {
		return nil, false
	}
	m := p.Measure()
	m.Batch = p.batch
	return m, true
}

// Measure runs the side-by-side comparison immediately, regardless of
// the cadence. The Batch field is left zero.
func (p *Probe) Measure() *Measurement {
	defer trace.Active().Begin("probe", "measure").End()
	layers := p.net.Layers
	exact := p.net.InferForwardLayers(p.x)
	approx := p.af.ApproxForward(p.x, p.g)

	m := &Measurement{
		RelErr:   make([]float64, len(layers)),
		ErrRatio: make([]float64, len(layers)),
	}
	diff := make([]float64, 0, len(exact[0].Data))
	for i := range layers {
		h, hat := exact[i], approx[i]
		diff = diff[:len(h.Data)]
		for k := range h.Data {
			diff[k] = hat.Data[k] - h.Data[k]
		}
		d := tensor.Norm(diff)
		m.RelErr[i] = safeRatio(d, tensor.Norm(h.Data))
		m.ErrRatio[i] = safeRatio(d, tensor.Norm(hat.Data))
	}
	m.MeanC = math.Inf(1)
	if m.ErrRatio[0] > 0 {
		m.MeanC = 1 / m.ErrRatio[0]
	}
	m.Growth = fitGrowth(m.RelErr)
	if !math.IsInf(m.MeanC, 0) && m.MeanC > 0 {
		m.Theory = make([]float64, len(layers))
		for k := range m.Theory {
			m.Theory[k] = theory.ErrorRatio(m.MeanC, k+1)
		}
	}
	return m
}

// safeRatio returns num/den, or 0 when the denominator vanishes (an
// all-zero exact activation has no meaningful relative error).
func safeRatio(num, den float64) float64 {
	if den == 0 { //lint:ignore float-equality exact-zero denominator guard; an all-zero activation has no relative error
		return 0
	}
	return num / den
}

// fitGrowth fits the per-layer error growth factor. Under Theorem 7.2
// the cumulative error after k layers is g^k − 1 for growth factor
// g = (c+1)/c, i.e. log(1 + err_k) = k·log g — a line through the
// origin in depth. The least-squares slope through the origin is
// Σ k·y_k / Σ k², and the growth factor is its exponential. Layers with
// zero error contribute y_k = 0, pulling the fit toward 1 (no growth).
func fitGrowth(relErr []float64) float64 {
	var num, den float64
	for i, r := range relErr {
		k := float64(i + 1)
		num += k * math.Log1p(r)
		den += k * k
	}
	if den == 0 { //lint:ignore float-equality exact-zero denominator guard for the least-squares fit
		return 1
	}
	return math.Exp(num / den)
}
