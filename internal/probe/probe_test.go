package probe

import (
	"math"
	"testing"

	"samplednn/internal/core"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/theory"
)

// task builds a small separable classification problem.
func task(seed uint64, n, dim, classes int) (*tensor.Matrix, []int) {
	g := rng.New(seed)
	x := tensor.New(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		row := x.RowView(i)
		g.GaussianSlice(row, 0, 0.25)
		row[c%dim] += 2.5
	}
	return x, y
}

func deepALSH(t *testing.T, seed uint64, depth int) *core.ALSHApprox {
	t.Helper()
	net, err := nn.NewNetwork(nn.Uniform(8, 64, depth, 4), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewALSHApprox(net, opt.NewSGD(0.1), core.ALSHConfig{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func trainSteps(t *testing.T, m core.Method, x *tensor.Matrix, y []int, steps, batch int) {
	t.Helper()
	g := rng.New(999)
	bx := tensor.New(batch, x.Cols)
	by := make([]int, batch)
	for s := 0; s < steps; s++ {
		for i := 0; i < batch; i++ {
			j := g.IntN(x.Rows)
			copy(bx.RowView(i), x.RowView(j))
			by[i] = y[j]
		}
		if loss := m.Step(bx, by); math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("loss diverged at step %d", s)
		}
	}
}

// TestALSHDepth3AgainstTheory is the probe's headline check: on a
// depth-3 ALSH-approx network the measured per-layer relative errors sit
// next to the Theorem 7.2 curve derived from the measured first-layer
// mass ratio c.
func TestALSHDepth3AgainstTheory(t *testing.T) {
	x, y := task(1, 60, 8, 4)
	m := deepALSH(t, 2, 3)
	trainSteps(t, m, x, y, 40, 4)

	pr := New(m, x, 1, 7)
	if pr == nil {
		t.Fatal("ALSH-approx must support the probe")
	}
	meas := pr.Measure()

	wantLayers := 4 // 3 hidden + exact output
	if len(meas.RelErr) != wantLayers || len(meas.ErrRatio) != wantLayers {
		t.Fatalf("got %d/%d per-layer errors, want %d", len(meas.RelErr), len(meas.ErrRatio), wantLayers)
	}
	for i, r := range meas.RelErr {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			t.Fatalf("layer %d relative error %v", i, r)
		}
	}
	if meas.ErrRatio[0] <= 0 {
		t.Fatalf("first hidden layer came out exact (err ratio %v); sampling did nothing", meas.ErrRatio[0])
	}
	if meas.MeanC <= 0 || math.IsInf(meas.MeanC, 0) {
		t.Fatalf("mean c %v", meas.MeanC)
	}
	if len(meas.Theory) != wantLayers {
		t.Fatalf("theory curve has %d entries, want %d", len(meas.Theory), wantLayers)
	}
	for k := range meas.Theory {
		want := theory.ErrorRatio(meas.MeanC, k+1)
		if meas.Theory[k] != want {
			t.Fatalf("Theory[%d] = %v, want ErrorRatio(%v, %d) = %v", k, meas.Theory[k], meas.MeanC, k+1, want)
		}
		if k > 0 && meas.Theory[k] <= meas.Theory[k-1] {
			t.Fatalf("theory curve must grow with depth: %v", meas.Theory)
		}
	}
	// The theorem predicts compounding: deeper hidden layers should not
	// shed error. Real runs are noisy, so only require the last hidden
	// layer to carry at least as much error as half the first.
	if meas.RelErr[2] < meas.RelErr[0]/2 {
		t.Errorf("error did not compound: rel_err %v", meas.RelErr)
	}
	if meas.Growth <= 1 {
		t.Errorf("fitted growth factor %v, want > 1 for a lossy sampler", meas.Growth)
	}
	t.Logf("rel_err=%v err_ratio=%v mean_c=%v growth=%v theory=%v",
		meas.RelErr, meas.ErrRatio, meas.MeanC, meas.Growth, meas.Theory)
}

// TestNilProbeTickIsFree pins the disabled-probe hot path: one nil check
// and no allocation.
func TestNilProbeTickIsFree(t *testing.T) {
	var pr *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := pr.Tick(); ok {
			t.Fatal("nil probe fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil probe Tick allocates %v per call", allocs)
	}
}

// TestTickCadence checks that Tick fires exactly on the configured
// cadence and stamps the cumulative batch count.
func TestTickCadence(t *testing.T) {
	x, y := task(3, 30, 8, 4)
	m := deepALSH(t, 4, 3)
	trainSteps(t, m, x, y, 5, 4)
	_ = y
	pr := New(m, x, 3, 11)
	fired := []int{}
	for i := 0; i < 10; i++ {
		if meas, ok := pr.Tick(); ok {
			fired = append(fired, meas.Batch)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

// TestProbeDoesNotPerturbTraining trains two identically seeded ALSH
// methods, one probed heavily and one not, and requires byte-identical
// weights: the probe must never consume the training RNG stream or
// mutate method state. Training runs stochastic (batch size 1) — the
// sequential ALSH multi-row union iterates a map, whose random order
// perturbs low-order float bits between runs independently of the probe.
func TestProbeDoesNotPerturbTraining(t *testing.T) {
	x, y := task(5, 60, 8, 4)
	plain := deepALSH(t, 6, 3)
	probed := deepALSH(t, 6, 3)
	pr := New(probed, x, 1, 13)

	g1, g2 := rng.New(42), rng.New(42)
	bx := tensor.New(1, x.Cols)
	by := make([]int, 1)
	stepFrom := func(m core.Method, g *rng.RNG) {
		j := g.IntN(x.Rows)
		copy(bx.RowView(0), x.RowView(j))
		by[0] = y[j]
		m.Step(bx, by)
	}
	for s := 0; s < 30; s++ {
		stepFrom(plain, g1)
		stepFrom(probed, g2)
		if _, ok := pr.Tick(); !ok {
			t.Fatal("probe with every=1 must fire each batch")
		}
	}
	for li, l := range plain.Net().Layers {
		pl := probed.Net().Layers[li]
		for k := range l.W.Data {
			if l.W.Data[k] != pl.W.Data[k] {
				t.Fatalf("layer %d weight %d differs: probe perturbed training", li, k)
			}
		}
		for k := range l.B {
			if l.B[k] != pl.B[k] {
				t.Fatalf("layer %d bias %d differs: probe perturbed training", li, k)
			}
		}
	}
}

// TestUnsupportedMethodReturnsNil: exact training has nothing to probe.
func TestUnsupportedMethodReturnsNil(t *testing.T) {
	x, _ := task(7, 10, 8, 4)
	net, err := nn.NewNetwork(nn.Uniform(8, 16, 2, 4), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if pr := New(core.NewStandard(net, opt.NewSGD(0.1)), x, 5, 1); pr != nil {
		t.Fatal("standard method must not get a probe")
	}
}

// TestFitGrowthRecoversGeometricFactor: a synthetic error sequence
// err_k = g^k − 1 must fit back to exactly g.
func TestFitGrowthRecoversGeometricFactor(t *testing.T) {
	const g = 1.2
	rel := make([]float64, 5)
	for i := range rel {
		rel[i] = math.Pow(g, float64(i+1)) - 1
	}
	if got := fitGrowth(rel); math.Abs(got-g) > 1e-12 {
		t.Fatalf("fitted growth %v, want %v", got, g)
	}
}
