package samplednn

// Cross-module integration tests: end-to-end flows that exercise the
// dataset generators, every training method, the trainer, the metrics,
// model serialization, and the theory module together — the paths the
// cmd/ tools and examples depend on.

import (
	"math"
	"path/filepath"
	"testing"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/metrics"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/theory"
	"samplednn/internal/train"
)

func smallBenchmark(t *testing.T, name string, seed uint64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(name, dataset.Options{
		Seed: seed, MaxTrain: 400, MaxTest: 150, MaxVal: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// Every method must train end to end on a real benchmark geometry and
// beat chance.
func TestEndToEndAllMethodsBeatChance(t *testing.T) {
	ds := smallBenchmark(t, "mnist", 1)
	for _, name := range append(core.MethodNames(), "alsh-parallel") {
		t.Run(name, func(t *testing.T) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 64, 2, ds.Spec.Classes), rng.New(2))
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions(3)
			opts.DropoutKeep = 0.5
			opts.Workers = 2
			opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 3, L: 5, M: 3, U: 0.83}, MinActive: 6}
			batch := 20
			var optim opt.Optimizer = opt.NewSGD(0.05)
			if name == "alsh" {
				batch = 1
				optim = opt.NewAdam(0.01)
			}
			m, err := core.New(name, net, optim, opts)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := train.New(m, ds, train.Config{
				Epochs: 3, BatchSize: batch, Seed: 4, MaxEvalSamples: 150,
				RebuildPerEpoch: name == "alsh" || name == "alsh-parallel",
			})
			if err != nil {
				t.Fatal(err)
			}
			hist, err := tr.Run()
			if err != nil {
				t.Fatal(err)
			}
			if acc := hist.Final().TestAccuracy; acc < 0.2 {
				t.Fatalf("%s accuracy %v, chance is 0.1", name, acc)
			}
		})
	}
}

// Train → checkpoint → reload → predictions identical to the live model.
func TestTrainSerializeReload(t *testing.T) {
	ds := smallBenchmark(t, "fashion", 5)
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 48, 2, ds.Spec.Classes), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewStandard(net, opt.NewSGD(0.05))
	path := filepath.Join(t.TempDir(), "fashion.snn")
	tr, err := train.New(m, ds, train.Config{
		Epochs: 3, BatchSize: 20, Seed: 7, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	acc := loaded.Accuracy(ds.Test.X, ds.Test.Y)
	if math.Abs(acc-hist.BestAccuracy()) > 1e-12 {
		t.Fatalf("reloaded checkpoint accuracy %v, best %v", acc, hist.BestAccuracy())
	}
}

// The paper's central comparison, end to end: on the same initialization
// and data, ALSH-approx degrades on a deep network while exact training
// does not (§7, Figure 7).
func TestDeepALSHDegradesWhereStandardDoesNot(t *testing.T) {
	ds := smallBenchmark(t, "mnist", 8)
	const depth = 6
	runOne := func(name string) float64 {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 64, depth, ds.Spec.Classes), rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		var optim opt.Optimizer = opt.NewSGD(0.02)
		opts := core.DefaultOptions(10)
		opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 3, L: 4, M: 3, U: 0.83}, MinActive: 4}
		if name == "alsh" {
			optim = opt.NewAdam(0.01)
		}
		m, err := core.New(name, net, optim, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := train.New(m, ds, train.Config{
			Epochs: 4, BatchSize: 1, Seed: 11, MaxEvalSamples: 150,
			RebuildPerEpoch: name == "alsh",
		})
		if err != nil {
			t.Fatal(err)
		}
		hist, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return hist.Final().TestAccuracy
	}
	std := runOne("standard")
	alsh := runOne("alsh")
	if alsh >= std {
		t.Fatalf("at depth %d ALSH (%v) should trail exact training (%v)", depth, alsh, std)
	}
	if std < 0.5 {
		t.Fatalf("standard training should still learn at depth %d, got %v", depth, std)
	}
}

// The §10.3 observation, end to end: prediction entropy of a deep
// ALSH-trained model collapses relative to a shallow one.
func TestPredictionEntropyCollapsesWithDepth(t *testing.T) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 12, MaxTrain: 800, MaxTest: 200, MaxVal: 50})
	if err != nil {
		t.Fatal(err)
	}
	entropyAt := func(depth int) float64 {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 96, depth, ds.Spec.Classes), rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewALSHApprox(net, opt.NewAdam(0.005), core.ALSHConfig{
			Params: lsh.Params{K: 4, L: 5, M: 3, U: 0.83}, MinActive: 5,
		}, rng.New(14))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := train.New(m, ds, train.Config{
			Epochs: 3, BatchSize: 1, Seed: 15, MaxEvalSamples: 150, RebuildPerEpoch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			t.Fatal(err)
		}
		cm := metrics.NewConfusionMatrix(ds.Spec.Classes)
		cm.AddBatch(ds.Test.Y, m.Net().Predict(ds.Test.X))
		return cm.PredictionEntropy()
	}
	shallow := entropyAt(1)
	deep := entropyAt(7)
	if deep >= shallow {
		t.Fatalf("prediction entropy should collapse with depth: shallow %v, deep %v", shallow, deep)
	}
}

// The theory module's depth limit agrees with the trained behaviour
// regime: error exceeds estimate beyond 3 layers at the paper's c=5.
func TestTheoryMatchesPaperHeadline(t *testing.T) {
	if got := theory.DepthLimit(5, 1); got != 3 {
		t.Fatalf("DepthLimit(5,1) = %d", got)
	}
	table := theory.PaperTable()
	if table[0] != 0.19999999999999996 && math.Abs(table[0]-0.2) > 1e-12 {
		t.Fatalf("first ratio %v", table[0])
	}
}

// The §10.4 decision tree is consistent with the experiment outcomes:
// mini-batch → mc, stochastic deep → standard.
func TestRecommendationsConsistent(t *testing.T) {
	if core.Recommend(20, 3, false).Method != "mc" {
		t.Fatal("mini-batch recommendation should be mc")
	}
	if core.Recommend(1, 7, true).Method != "standard" {
		t.Fatal("deep stochastic recommendation should be standard")
	}
	if core.Recommend(1, 3, true).Method != "alsh" {
		t.Fatal("shallow stochastic parallel recommendation should be alsh")
	}
}
