// Package samplednn is a from-scratch Go reproduction of "Evaluating the
// Feasibility of Sampling-Based Techniques for Training Multilayer
// Perceptrons" (Ebrahimi, Advani, Asudeh; EDBT 2025).
//
// The library lives under internal/: tensor kernels, an LSH/ALSH MIPS
// engine, approximate matrix multiplication, an MLP substrate with
// optimizers, synthetic versions of the paper's six benchmarks, the five
// training methods the paper evaluates, the §7 error-propagation theory,
// and an experiment harness that regenerates every table and figure.
// This root package holds the module-level integration tests and the
// benchmark suite (bench_test.go) — one testing.B benchmark per paper
// artifact plus the ablations DESIGN.md lists.
//
// Start with README.md, DESIGN.md (system inventory and experiment
// index), and EXPERIMENTS.md (paper-vs-measured results).
package samplednn
