GO ?= go

# The packed GEMM micro-kernel accumulates with math.FMA, which compiles
# to a bare VFMADD under GOAMD64=v3 but carries a per-call CPU-feature
# branch at the v1 default (~2.5x slower on the dense kernels). All hosts
# we target have AVX2+FMA; override with `make GOAMD64=v1 ...` for
# baseline-compatible builds. Results are bit-identical either way —
# math.FMA computes the same correctly-rounded value on every path.
export GOAMD64 ?= v3

.PHONY: build test tier1 lint bench bench-gemm bench-trace bench-obs bench-dist bench-serve bench-lint vet fmt journal-demo trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static-analysis gate: the repolint analyzer suite (stdlib go/ast +
# go/types checks enforcing the determinism, concurrency, and
# crash-safety invariants — DESIGN.md §10) plus gofmt cleanliness.
# Zero unsuppressed diagnostics or the build fails; deliberate waivers
# carry a //lint:ignore <check> <reason> annotation.
lint:
	$(GO) run ./cmd/repolint
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi

# Tier-1 gate: static analysis, vet, and race-enabled tests for every
# package in the module (the race gate covers the worker pool, parallel
# kernels, parallel ALSH workers, tracer/metrics registry, the
# checkpoint/resume machinery, and the serving layer's concurrent
# predict + hot-swap path; internal/bench dominates the runtime).
tier1: lint
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# Serial-vs-parallel GEMM kernel sweep; every parallel point is checked
# bit-for-bit against the serial kernel before its timing is recorded.
# -autotune picks the packed-GEMM block sizes for this host first;
# -baseline gates the run against the committed report, failing on any
# serial point that lost >20% GFLOPS (the output is written only when
# the gate passes).
bench-gemm:
	$(GO) run ./cmd/benchgemm -sizes 128,256,512 -workers 1,2,4 \
		-autotune -baseline BENCH_gemm.json -out BENCH_gemm.json

# Distributed data-parallel throughput sweep: steps/sec at 1, 2, and 4
# worker processes against the in-process reference, every point checked
# byte-for-byte against the single-process weights before it is recorded.
bench-dist:
	$(GO) run ./cmd/benchdist -workers 1,2,4 -epochs 3 -out BENCH_distributed.json

# Serving-layer sweep: /predict latency percentiles and throughput at
# 1, 2, and 4 closed-loop workers against a real mlpserve instance on a
# loopback port; every point's responses are verified against a local
# forward pass of the served checkpoint before its timing is recorded.
bench-serve:
	$(GO) run ./cmd/benchserve -workers 1,2,4 -requests 300 -rows 4 -out BENCH_serve.json

# Tracer and error-probe overhead on ALSH-approx training: two baseline
# runs expose the host noise floor, then tracer-on / probe-on / both are
# measured against their mean.
bench-trace:
	$(GO) run ./cmd/benchtrace -scale small -out BENCH_trace.json

# Correlation-plane overhead: ns per context-stamped dist frame round
# trip (vs the zero-context baseline), ns per HTTP request-context
# derivation, and the disabled journal path; merged into BENCH_trace.json
# next to the tracer numbers.
bench-obs:
	$(GO) run ./cmd/benchtrace -obs -out BENCH_trace.json

# Analyzer-suite timing: loader wall time (parse + wave-parallel
# type-checking over internal/pool) and analysis wall time (call graph,
# fact fixpoint, checks) over the real module, each iteration from a
# cold loader.
bench-lint:
	$(GO) run ./cmd/benchlint -iters 3 -out BENCH_lint.json

# Two-epoch synthetic run that journals every event, then pretty-prints
# the journal — the fastest way to see the telemetry schema end to end.
journal-demo:
	rm -f /tmp/journal-demo.jsonl
	$(GO) run ./cmd/mlptrain -dataset mnist -method alsh -epochs 2 \
		-train 400 -test 100 -units 64 -layers 2 -confusion=false \
		-journal /tmp/journal-demo.jsonl
	$(GO) run ./cmd/journalcat /tmp/journal-demo.jsonl

# Two-epoch synthetic run with the span tracer and error-compounding
# probe enabled; writes /tmp/trace-demo.json, loadable in Perfetto
# (https://ui.perfetto.dev) or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/mlptrain -dataset mnist -method alsh -epochs 2 \
		-train 400 -test 100 -units 64 -layers 2 -confusion=false \
		-probe-every 10 -trace /tmp/trace-demo.json
	@echo "trace written to /tmp/trace-demo.json — open in https://ui.perfetto.dev"

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
