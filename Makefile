GO ?= go

.PHONY: build test tier1 bench vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: vet plus race-enabled tests for the packages with
# concurrency (parallel ALSH workers) and crash-safety machinery
# (checkpoint/resume/rollback).
tier1:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/train/...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
