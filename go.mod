module samplednn

go 1.22
