// Command benchlint times the static-analysis suite over the real
// module and writes BENCH_lint.json, the artifact the Makefile
// `bench-lint` target tracks. Two phases are timed separately: the
// loader (parse + wave-parallel type-checking over internal/pool) and
// the analysis (call-graph construction, fact fixpoint, and every
// check), because they scale differently — the loader with package
// count and CPU count, the analysis with function and call-site count.
//
// Usage:
//
//	benchlint [-root dir] [-iters 3] [-out BENCH_lint.json]
//
// Each iteration builds a fresh loader so the package cache never
// amortizes the work being measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/lint"
)

type point struct {
	Iter            int     `json:"iter"`
	LoadSeconds     float64 `json:"load_seconds"`
	AnalysisSeconds float64 `json:"analysis_seconds"`
	TotalSeconds    float64 `json:"total_seconds"`
}

type report struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	Packages    int     `json:"packages"`
	Functions   int     `json:"functions"`
	Diagnostics int     `json:"diagnostics"`
	Suppressed  int     `json:"suppressed"`
	Points      []point `json:"points"`
	Best        point   `json:"best"`
}

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	iters := flag.Int("iters", 3, "timed iterations, each with a cold loader")
	out := flag.String("out", "BENCH_lint.json", "output JSON path")
	flag.Parse()
	if *iters <= 0 {
		fatal(fmt.Errorf("-iters must be positive"))
	}

	if *root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		r, err := lint.FindModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
		*root = r
	}

	var rep report
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)

	for i := 1; i <= *iters; i++ {
		loader, err := lint.NewLoader(*root)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		pkgs, err := loader.LoadModule()
		if err != nil {
			fatal(err)
		}
		t1 := time.Now()
		prog := lint.NewProgram(pkgs)
		res := lint.RunProgram(*root, prog, lint.Checks())
		t2 := time.Now()

		p := point{
			Iter:            i,
			LoadSeconds:     t1.Sub(t0).Seconds(),
			AnalysisSeconds: t2.Sub(t1).Seconds(),
			TotalSeconds:    t2.Sub(t0).Seconds(),
		}
		rep.Points = append(rep.Points, p)
		if i == 1 || p.TotalSeconds < rep.Best.TotalSeconds {
			rep.Best = p
		}
		rep.Packages = len(pkgs)
		rep.Functions = prog.NumFunctions()
		rep.Diagnostics = len(res.Diagnostics)
		rep.Suppressed = len(res.Suppressed)
		fmt.Printf("iter %d: load %6.2fs  analysis %6.2fs  total %6.2fs  (%d pkgs, %d fns, %d diags, %d suppressed)\n",
			i, p.LoadSeconds, p.AnalysisSeconds, p.TotalSeconds,
			rep.Packages, rep.Functions, rep.Diagnostics, rep.Suppressed)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, append(data, '\n')); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (best total %.2fs on %d CPUs)\n", *out, rep.Best.TotalSeconds, rep.Host.CPUs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchlint:", err)
	os.Exit(2)
}
