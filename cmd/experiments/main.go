// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp table2 -scale small
//	experiments -exp all -scale tiny -csv
//
// Every experiment prints an ASCII table (or CSV with -csv) whose rows
// mirror the corresponding paper artifact, plus the paper's reported
// values for side-by-side comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		scale  = flag.String("scale", "small", "tiny | small | paper")
		csv    = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
		outDir = flag.String("out", "", "also write <id>.csv files into this directory")
		list   = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	s, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		res, err := e.Run(s)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Render())
			fmt.Printf("(%s scale, %.1fs)\n\n", s, time.Since(start).Seconds())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, res.ID+".csv")
			if err := atomicfile.WriteFileBytes(path, []byte(res.CSV())); err != nil {
				fatal(fmt.Errorf("writing %s: %w", path, err))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
