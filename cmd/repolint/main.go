// Command repolint runs the repository's static-analysis suite
// (internal/lint): stdlib-only go/ast + go/types checks that enforce
// the determinism, concurrency, and crash-safety invariants the
// paper's evaluation depends on. It exits 1 when any unsuppressed
// diagnostic is found, so it can gate make tier1.
//
// Usage:
//
//	repolint [-root dir] [-json] [-list] [-facts]
//
// With -json it emits a machine-readable report (schema pinned by
// internal/lint's TestJSONSchema) for downstream tooling. With -facts
// it prints the interprocedural fact table — every function carrying a
// transitive fact (mutates-receiver, reads-wall-clock, …) and the call
// chain it was acquired through — which is the debugging view for
// chain-carrying diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"samplednn/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of file:line:col text")
	list := flag.Bool("list", false, "list the checks and exit")
	facts := flag.Bool("facts", false, "print the interprocedural fact table instead of running checks")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-18s %s\n", c.Name, c.Doc)
		}
		return
	}

	if *root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		r, err := lint.FindModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
		*root = r
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	// Type errors don't stop the run — checks degrade gracefully — but
	// they make results unreliable, so surface them on stderr.
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "repolint: type error in %s: %v\n", p.ImportPath, terr)
		}
	}

	prog := lint.NewProgram(pkgs)
	if *facts {
		prog.WriteFacts(os.Stdout, *root)
		return
	}

	res := lint.RunProgram(*root, prog, lint.Checks())
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		res.WriteText(os.Stdout)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
