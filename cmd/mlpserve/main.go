// Command mlpserve serves predictions from an SNCK checkpoint over
// HTTP: the inference-side counterpart to mlptrain. It loads the
// checkpoint (falling back to the .prev backup exactly like training
// resume), coalesces concurrent requests into micro-batches, answers
// LSH-accelerated top-k queries, and hot-swaps checkpoints with zero
// downtime via POST /admin/swap.
//
// Usage:
//
//	mlpserve -checkpoint run.snck -addr :8080 -journal serve.jsonl
//
// Endpoints:
//
//	POST /predict     {"rows":[[...],...]}        → class predictions
//	POST /topk        {"row":[...],"k":3}         → top-k output ids
//	GET  /healthz                                  → model info
//	GET  /metrics                                  → Prometheus text
//	POST /admin/swap  {"checkpoint":"new.snck"}    → hot swap
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"samplednn/internal/obs"
	"samplednn/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		checkpoint = flag.String("checkpoint", "", "SNCK checkpoint to serve (required)")
		topk       = flag.Int("topk", 5, "default k for /topk; also builds the LSH top-k index (0 disables both)")
		journal    = flag.String("journal", "", "append serve events to this JSONL journal")
		maxBatch   = flag.Int("max-batch-rows", 256, "micro-batch row cap (also the per-request row cap)")
		maxBody    = flag.Int64("max-body", 1<<20, "request body byte cap")
		seed       = flag.Uint64("seed", 1, "seed for the LSH top-k index hash draws")
	)
	flag.Parse()
	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required"))
	}

	var j *obs.Journal
	if *journal != "" {
		var err error
		if j, err = obs.Open(*journal); err != nil {
			fatal(err)
		}
		defer j.Close()
	}

	m, err := serve.LoadModel(*checkpoint, serve.ModelOptions{TopK: *topk > 0, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	s := serve.NewServer(serve.Options{
		MaxBatchRows: *maxBatch,
		MaxBodyBytes: *maxBody,
		TopK:         *topk,
		Model:        serve.ModelOptions{TopK: *topk > 0, Seed: *seed},
		Journal:      j,
		// Deriving the run ID from the checkpoint CRC means restarts on
		// the same model share one run in merged journals, while a swap
		// to different weights is visible as a new run.
		Run: obs.RunID(uint64(m.Info.CRC)),
	})
	s.Install(m)
	if m.Info.Fallback {
		fmt.Fprintln(os.Stderr, "mlpserve: primary checkpoint corrupt; serving the .prev backup")
	}
	fmt.Printf("mlpserve: serving %s (crc %08x, epoch %d, %s, %d params) on %s\n",
		*checkpoint, m.Info.CRC, m.Info.Epoch, m.Info.Method, m.Info.Params, *addr)

	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Request bodies are small JSON (capped by -max-body) and every
		// response is a single prediction batch, so tight bounds are
		// safe: a stalled client is cut loose, not waited on.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	//lint:ignore raw-goroutine ListenAndServe blocks for the process lifetime; shutdown is coordinated below, so it cannot be a bounded pool task
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		// Restore default signal disposition first: a second Ctrl-C
		// during a slow drain kills the process instead of being dropped.
		stop()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fatal(err)
		}
		// Shutdown has stopped accepting connections; Drain waits for the
		// in-flight requests it left running and journals serve-drain so
		// the shutdown is visible in merged journals.
		s.Drain()
		fmt.Println("mlpserve: drained, bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlpserve:", err)
	os.Exit(1)
}
