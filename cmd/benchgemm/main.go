// Command benchgemm runs the GEMM serial-vs-parallel kernel sweep and
// writes the results to a JSON report (BENCH_gemm.json by default), the
// artifact the Makefile `bench-gemm` target tracks.
//
// Usage:
//
//	benchgemm -sizes 128,256,512 -workers 1,2,4 -out BENCH_gemm.json
//
// Every parallel measurement is validated bit-for-bit against the serial
// kernel before its timing is reported; a mismatch fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_gemm.json", "output JSON path")
		sizes   = flag.String("sizes", "128,256,512", "comma-separated square operand sizes")
		workers = flag.String("workers", "1,2,4", "comma-separated worker counts (1 = serial baseline)")
		budget  = flag.Duration("budget", 100*time.Millisecond, "minimum measurement time per point")
	)
	flag.Parse()
	sz, err := parseInts(*sizes)
	if err != nil {
		fatal(fmt.Errorf("-sizes: %w", err))
	}
	ws, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *budget <= 0 {
		fatal(fmt.Errorf("-budget %v must be positive", *budget))
	}

	rep := bench.RunGEMMBench(sz, ws, *budget)
	for _, p := range rep.Points {
		fmt.Printf("%-14s n=%-5d workers=%d  %8.3f ms/op  %6.2f MFLOP/s  speedup %.2fx\n",
			p.Kernel, p.Size, p.Workers, p.NsPerOp/1e6, 1e3*p.GFLOPS, p.SpeedupVsSerial)
		if !p.BitIdentical {
			fatal(fmt.Errorf("kernel %s n=%d workers=%d: parallel result not bit-identical to serial",
				p.Kernel, p.Size, p.Workers))
		}
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d points, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgemm:", err)
	os.Exit(1)
}
