// Command benchgemm runs the GEMM serial-vs-parallel kernel sweep and
// writes the results to a JSON report (BENCH_gemm.json by default), the
// artifact the Makefile `bench-gemm` target tracks.
//
// Usage:
//
//	benchgemm -sizes 128,256,512 -workers 1,2,4 -autotune \
//	          -baseline BENCH_gemm.json -out BENCH_gemm.json
//
// Every parallel measurement is validated bit-for-bit against the serial
// kernel before its timing is reported; a mismatch fails the run, as
// does a float32 result outside its documented accuracy bound.
//
// With -autotune, a small grid of packed-GEMM block configurations is
// timed first and the fastest is installed for the sweep (and recorded
// in the report). With -baseline, the new serial (workers=1) GFLOPS are
// compared against the matching points of an earlier report: any kernel
// and size that lost more than 20% throughput fails the run, and the
// output file is only written when the gate passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

// regressionTolerance is the fraction of baseline GFLOPS a point may
// lose before the gate fails (0.8 = fail below 80% of baseline).
const regressionTolerance = 0.8

func main() {
	var (
		out      = flag.String("out", "BENCH_gemm.json", "output JSON path")
		sizes    = flag.String("sizes", "128,256,512", "comma-separated square operand sizes")
		workers  = flag.String("workers", "1,2,4", "comma-separated worker counts (1 = serial baseline)")
		budget   = flag.Duration("budget", 100*time.Millisecond, "minimum measurement time per point")
		autotune = flag.Bool("autotune", false, "sweep packed-GEMM block configs first and install the fastest")
		baseline = flag.String("baseline", "", "prior report to gate against (fail on >20% serial GFLOPS regression)")
		f32      = flag.Bool("f32", true, "include the float32 matmul32 kernel in the sweep")
	)
	flag.Parse()
	sz, err := parseInts(*sizes)
	if err != nil {
		fatal(fmt.Errorf("-sizes: %w", err))
	}
	ws, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *budget <= 0 {
		fatal(fmt.Errorf("-budget %v must be positive", *budget))
	}

	var tuned *bench.AutotuneResult
	if *autotune {
		n := sz[len(sz)-1] // tune at the largest (most cache-sensitive) size
		tuned = bench.AutotuneGEMM(n, *budget)
		fmt.Printf("autotune n=%d: best MC=%d KC=%d NC=%d (%.2f GFLOPS)\n",
			n, tuned.Best.MC, tuned.Best.KC, tuned.Best.NC, tuned.Points[bestIndex(tuned)].GFLOPS)
	}

	rep, err := bench.RunGEMMBench(sz, ws, *budget, *f32)
	if err != nil {
		fatal(err)
	}
	rep.Autotune = tuned
	for _, p := range rep.Points {
		fmt.Printf("%-14s n=%-5d workers=%d  %8.3f ms/op  %7.2f GFLOPS  speedup %.2fx  (min of %d, stddev %.2f ms)\n",
			p.Kernel, p.Size, p.Workers, p.NsPerOp/1e6, p.GFLOPS, p.SpeedupVsSerial, p.Runs, p.StddevNs/1e6)
		if !p.BitIdentical {
			fatal(fmt.Errorf("kernel %s n=%d workers=%d: parallel result not bit-identical to serial",
				p.Kernel, p.Size, p.Workers))
		}
	}
	if *baseline != "" {
		if err := gateAgainst(*baseline, rep); err != nil {
			fatal(err)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d points, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

// gateAgainst fails when any serial (workers=1) point present in both
// the baseline report and the new one lost more than the allowed
// fraction of its GFLOPS. Points only one side has (new kernels, new
// sizes) pass trivially.
func gateAgainst(path string, rep *bench.GEMMReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base bench.GEMMReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	old := make(map[string]float64)
	for _, p := range base.Points {
		if p.Workers == 1 {
			old[fmt.Sprintf("%s@%d", p.Kernel, p.Size)] = p.GFLOPS
		}
	}
	compared := 0
	for _, p := range rep.Points {
		if p.Workers != 1 {
			continue
		}
		key := fmt.Sprintf("%s@%d", p.Kernel, p.Size)
		was, ok := old[key]
		if !ok || was <= 0 {
			continue
		}
		compared++
		if p.GFLOPS < regressionTolerance*was {
			return fmt.Errorf("regression gate: %s fell to %.2f GFLOPS, below %.0f%% of baseline %.2f (%s)",
				key, p.GFLOPS, 100*regressionTolerance, was, path)
		}
	}
	fmt.Printf("regression gate: %d serial points within %.0f%% of %s\n",
		compared, 100*regressionTolerance, path)
	return nil
}

func bestIndex(t *bench.AutotuneResult) int {
	for i, p := range t.Points {
		if p.Config == t.Best {
			return i
		}
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgemm:", err)
	os.Exit(1)
}
