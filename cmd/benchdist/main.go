// Command benchdist runs the distributed data-parallel throughput sweep
// and writes the results to a JSON report (BENCH_distributed.json by
// default), the artifact the Makefile `bench-dist` target tracks.
//
// Usage:
//
//	benchdist -workers 1,2,4 -epochs 3 -out BENCH_distributed.json
//
// Every worker count trains the same workload with the same shard count;
// a final-weight mismatch against the in-process reference fails the
// run. The coordinator spawns workers by re-executing this binary, so
// main hands off to the dist worker loop when the marker environment
// variable is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
	"samplednn/internal/dist"
)

func main() {
	if dist.IsWorkerProcess() {
		os.Exit(dist.WorkerMain())
	}
	var (
		out     = flag.String("out", "BENCH_distributed.json", "output JSON path")
		workers = flag.String("workers", "1,2,4", "comma-separated worker process counts (0 = in-process reference, always run)")
		epochs  = flag.Int("epochs", 3, "training epochs per point")
		trainN  = flag.Int("train", 400, "training samples")
		batch   = flag.Int("batch", 20, "batch size")
	)
	flag.Parse()
	ws, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *epochs <= 0 || *trainN <= 0 || *batch <= 0 {
		fatal(fmt.Errorf("-epochs, -train, and -batch must be positive"))
	}

	rep, err := bench.RunDistBench(ws, *epochs, *trainN, *batch)
	if err != nil {
		fatal(err)
	}
	for _, p := range rep.Points {
		label := fmt.Sprintf("workers=%d", p.Workers)
		if p.Workers == 0 {
			label = "single-proc"
		}
		fmt.Printf("%-11s shards=%d  %4d steps in %6.2fs  %7.1f steps/s  speedup %.2fx  loss %.4f\n",
			label, p.Shards, p.Steps, p.Seconds, p.StepsPerSec, p.SpeedupVsSingle, p.FinalLoss)
		if !p.BitIdentical {
			fatal(fmt.Errorf("workers=%d: final weights not byte-identical to the single-process reference", p.Workers))
		}
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d points, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdist:", err)
	os.Exit(1)
}
