package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"samplednn/internal/obs"
)

func TestFormatRecordSortsAndSkipsHeaderKeys(t *testing.T) {
	r := obs.Record{
		"ts":    "2026-08-06T12:00:00Z",
		"ev":    "epoch",
		"zeta":  1,
		"alpha": "x",
	}
	got := formatRecord(r)
	if !strings.Contains(got, "epoch") {
		t.Fatalf("missing event name: %q", got)
	}
	// alpha must precede zeta, and the header keys must not reappear as k=v.
	if strings.Index(got, "alpha=x") > strings.Index(got, "zeta=1") {
		t.Errorf("keys not sorted: %q", got)
	}
	if strings.Contains(got, "ts=") || strings.Contains(got, "ev=") {
		t.Errorf("header keys leaked into k=v section: %q", got)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Errorf("record line missing newline: %q", got)
	}
}

func TestFormatValueMarshalsNestedStructures(t *testing.T) {
	if got := formatValue(map[string]any{"a": 1.0}); got != `{"a":1}` {
		t.Errorf("map rendered %q", got)
	}
	if got := formatValue([]any{1.0, 2.5}); got != "[1,2.5]" {
		t.Errorf("slice rendered %q", got)
	}
	if got := formatValue("plain"); got != "plain" {
		t.Errorf("scalar rendered %q", got)
	}
}

func TestSummarizeRollsUpRuns(t *testing.T) {
	recs := []obs.Record{
		{"ev": "run-start", "method": "alsh"},
		{"ev": "epoch", "train_loss": 0.9, "test_acc": 0.60},
		{"ev": "divergence"},
		{"ev": "rollback"},
		{"ev": "probe", "growth": 1.31},
		{"ev": "epoch", "train_loss": 0.5, "test_acc": 0.82},
		{"ev": "run-end", "status": "completed", "best_acc": 0.82},
		{"ev": "run-start", "method": "mc", "resumed": true},
		{"ev": "epoch", "train_loss": 1.2, "test_acc": 0.4},
	}
	out := summarize(recs)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 run lines, got %d:\n%s", len(lines), out)
	}
	first := lines[0]
	for _, want := range []string{
		"run 1:", "method=alsh", "epochs=2", "last_loss=0.5", "best_acc=0.82",
		"divergences=1", "rollbacks=1", "probes=1 last_growth=1.31", "status=completed",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("run 1 line missing %q: %s", want, first)
		}
	}
	second := lines[1]
	for _, want := range []string{"run 2:", "method=mc", "resumed=true", "epochs=1", "status=running"} {
		if !strings.Contains(second, want) {
			t.Errorf("run 2 line missing %q: %s", want, second)
		}
	}
}

// A journal that starts mid-run (e.g. rotated file) still summarizes:
// records before the first run-start belong to an implicit run.
func TestSummarizeHandlesHeadlessRecords(t *testing.T) {
	recs := []obs.Record{
		{"ev": "epoch", "train_loss": 0.7},
		{"ev": "run-end", "status": "diverged"},
	}
	out := summarize(recs)
	if !strings.Contains(out, "run 1:") || !strings.Contains(out, "method=?") ||
		!strings.Contains(out, "status=diverged") {
		t.Fatalf("headless rollup wrong: %q", out)
	}
	if summarize(nil) != "" {
		t.Error("empty journal must summarize to empty output")
	}
}

func TestEmitLineSurfacesMalformedLines(t *testing.T) {
	var b strings.Builder
	emitLine(&b, []byte("{not json\n"))
	if !strings.HasPrefix(b.String(), "?? ") {
		t.Errorf("malformed line not surfaced: %q", b.String())
	}
	b.Reset()
	emitLine(&b, []byte("   \n"))
	if b.String() != "" {
		t.Errorf("blank line produced output: %q", b.String())
	}
}

// TestFollowFilePicksUpAppendedRecords drives followFile against a file
// that grows while being watched, including a torn write that is only
// completed by a later append.
func TestFollowFilePicksUpAppendedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(`{"ts":"t0","ev":"run-start","method":"alsh"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var b syncBuilder
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- followFile(&b, path, time.Millisecond, stop) }()

	waitFor(t, func() bool { return strings.Contains(b.String(), "run-start") })

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Torn write: first half of the line, no newline yet.
	if _, err := f.WriteString(`{"ts":"t1","ev":"ep`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if strings.Contains(b.String(), "t1") {
		t.Fatal("torn line was emitted before the newline arrived")
	}
	if _, err := f.WriteString("och\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	waitFor(t, func() bool { return strings.Contains(b.String(), "epoch") })

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("followFile returned error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("followFile did not stop")
	}
}

func TestFollowFileMissingFileErrors(t *testing.T) {
	var b strings.Builder
	if err := followFile(&b, filepath.Join(t.TempDir(), "nope.jsonl"), time.Millisecond, nil); err == nil {
		t.Fatal("want error for missing file")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

// syncBuilder is a strings.Builder safe for one writer + one reader.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFollowFileSurvivesRotation replaces the followed file wholesale
// (atomic-rename log rotation) and then truncates it in place; both
// times the follower must reopen and pick up records from the new
// generation instead of tailing the stale handle forever.
func TestFollowFileSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	if err := os.WriteFile(path, []byte(`{"ts":"t0","ev":"run-start","method":"mc"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var b syncBuilder
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- followFile(&b, path, time.Millisecond, stop) }()

	waitFor(t, func() bool { return strings.Contains(b.String(), "run-start") })

	// Rotation: write a fresh file and rename it over the followed path.
	next := filepath.Join(dir, "run.jsonl.next")
	if err := os.WriteFile(next, []byte(`{"ts":"t1","ev":"rotated"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return strings.Contains(b.String(), "rotated") })

	// In-place truncation: the file shrinks below what was consumed
	// (the replacement line is shorter than the rotated one), so the
	// size check — not the inode check — must trigger the reopen.
	if err := os.WriteFile(path, []byte(`{"ev":"cut"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return strings.Contains(b.String(), "cut") })

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("followFile returned error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("followFile did not stop")
	}
}

func TestSummarizePerRankRollups(t *testing.T) {
	recs := []obs.Record{
		{"ev": "dist-listen", "addr": "127.0.0.1:1"},
		{"ev": "dist-join", "rank": 1.0, "spawn": 1.0},
		{"ev": "dist-join", "rank": 0.0, "spawn": 1.0},
		{"ev": "dist-worker-start", "rank": 1.0},
		{"ev": "dist-sync", "rank": 0.0, "epoch": 0.0, "step": 0.0},
		{"ev": "dist-sync", "rank": 1.0, "epoch": 0.0, "step": 0.0},
		{"ev": "dist-worker-sync", "rank": 1.0, "epoch": 0.0, "step": 0.0},
		{"ev": "dist-step-fault", "rank": 1.0, "kind": "kill"},
		{"ev": "dist-join", "rank": 1.0, "spawn": 2.0},
		{"ev": "dist-retry", "rank": 0.0, "attempt": 1.0},
	}
	got := summarize(recs)
	wantLines := []string{
		"rank 0: joins=1 syncs=1 retries=1\n",
		"rank 1: joins=2 syncs=1 starts=1 worker_syncs=1 faults=1\n",
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w) {
			t.Errorf("summary missing %q:\n%s", w, got)
		}
	}
	if strings.Index(got, "rank 0:") > strings.Index(got, "rank 1:") {
		t.Errorf("rank lines not sorted:\n%s", got)
	}
}

func TestReadMergedOrdersAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeFile := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(a, `{"ev":"one","lc":1}`+"\n"+`{"ev":"four","lc":4}`+"\n")
	writeFile(b, `{"ev":"two","lc":2}`+"\n"+`{"ev":"three","lc":3}`+"\n")

	recs, err := readMerged([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, r := range recs {
		events = append(events, r.Event())
	}
	if strings.Join(events, ",") != "one,two,three,four" {
		t.Fatalf("merged order %v", events)
	}

	// A single file must pass through in on-disk order, not byte order.
	solo, err := readMerged([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	if solo[0].Event() != "one" || solo[1].Event() != "four" {
		t.Fatalf("single-file order changed: %v", solo)
	}
}
