// Command journalcat pretty-prints a JSONL run journal written by
// mlptrain -journal: one line per event, timestamp and event name first,
// then the remaining fields as sorted key=value pairs (nested objects
// stay JSON so they remain grep- and jq-able).
//
// Usage:
//
//	journalcat runs/mnist.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"samplednn/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: journalcat FILE")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	recs, err := obs.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "journalcat:", err)
		os.Exit(1)
	}
	for _, r := range recs {
		fmt.Print(formatRecord(r))
	}
}

func formatRecord(r obs.Record) string {
	line := fmt.Sprintf("%-30v %-11s", r["ts"], r.Event())
	for _, k := range r.Keys() {
		if k == "ts" || k == "ev" {
			continue
		}
		line += fmt.Sprintf(" %s=%s", k, formatValue(r[k]))
	}
	return line + "\n"
}

func formatValue(v any) string {
	switch v.(type) {
	case map[string]any, []any:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprint(v)
		}
		return string(b)
	}
	return fmt.Sprint(v)
}
