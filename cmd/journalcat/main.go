// Command journalcat pretty-prints a JSONL run journal written by
// mlptrain -journal: one line per event, timestamp and event name first,
// then the remaining fields as sorted key=value pairs (nested objects
// stay JSON so they remain grep- and jq-able).
//
// Usage:
//
//	journalcat runs/mnist.jsonl             # print every record
//	journalcat -summary runs/mnist.jsonl    # one rollup line per run
//	journalcat -follow runs/mnist.jsonl     # print, then tail new records
//	journalcat -merge coord.jsonl wj.rank0.jsonl wj.rank1.jsonl
//	                                        # one causally ordered stream
//	journalcat -summary coord.jsonl wj.rank0.jsonl wj.rank1.jsonl
//	                                        # merge, then roll up per run
//	                                        # and per worker rank
//
// -merge folds per-process journals (coordinator, worker ranks,
// mlpserve) into one stream ordered by the Lamport "lc" field their
// shared clock exchange stamps, emitted raw so it is itself a valid
// journal. The output is byte-reproducible: a pure function of the
// input contents, independent of argument order.
//
// journalcat exits non-zero when the journal cannot be read or parsed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"samplednn/internal/obs"
)

func main() {
	follow := flag.Bool("follow", false, "after printing existing records, poll the file and print records as they are appended (like tail -f)")
	summary := flag.Bool("summary", false, "print one rollup line per run (plus one per worker rank) instead of every record; multiple files are merged first")
	merge := flag.Bool("merge", false, "merge the journals into one causally ordered stream (Lamport clock order) and print it raw")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: journalcat [-follow | -summary | -merge] FILE...")
		flag.PrintDefaults()
	}
	flag.Parse()
	modes := 0
	for _, on := range []bool{*follow, *summary, *merge} {
		if on {
			modes++
		}
	}
	multiOK := *summary || *merge
	if modes > 1 || flag.NArg() < 1 || (flag.NArg() > 1 && !multiOK) {
		flag.Usage()
		os.Exit(2)
	}

	if *follow {
		if err := followFile(os.Stdout, flag.Arg(0), 200*time.Millisecond, nil); err != nil {
			fmt.Fprintln(os.Stderr, "journalcat:", err)
			os.Exit(1)
		}
		return
	}
	if *merge {
		out, err := obs.MergeJournalFiles(flag.Args()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journalcat:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	recs, err := readMerged(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "journalcat:", err)
		os.Exit(1)
	}
	if *summary {
		fmt.Print(summarize(recs))
		return
	}
	for _, r := range recs {
		fmt.Print(formatRecord(r))
	}
}

// readMerged reads one journal directly — preserving its on-disk record
// order, which run summaries depend on for journals without Lamport
// clocks — or merges several into causal order first.
func readMerged(paths []string) ([]obs.Record, error) {
	if len(paths) == 1 {
		return obs.ReadFile(paths[0])
	}
	data, err := obs.MergeJournalFiles(paths...)
	if err != nil {
		return nil, err
	}
	return obs.Read(bytes.NewReader(data))
}

// followFile prints every record in the journal, then keeps polling the
// file and prints new complete lines as they are appended. A line
// without a trailing newline (mid-append) is left in the buffer until
// completed. At every poll the follower checks for rotation: when the
// path now names a different file (log rotation, atomic replace) or the
// file shrank below what was already consumed (truncation), the stale
// handle is dropped and the new file is followed from its start —
// without this, a rotated journal would be tailed forever in silence.
// stop, when non-nil, ends the loop (tests use it; the CLI follows
// until killed).
func followFile(w io.Writer, path string, poll time.Duration, stop <-chan struct{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()
	r := bufio.NewReader(f)
	var partial []byte
	var consumed int64 // bytes taken from the current handle
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			consumed += int64(len(line))
			partial = append(partial, line...)
		}
		if err == nil {
			emitLine(w, partial)
			partial = partial[:0]
			continue
		}
		if err != io.EOF {
			return err
		}
		stale, err := isStale(f, path, consumed)
		if err != nil {
			return err
		}
		if stale {
			nf, err := os.Open(path)
			if err != nil {
				return err
			}
			f.Close()
			f = nf
			r = bufio.NewReader(f)
			// A dangling partial belonged to the replaced file and will
			// never complete; drop it rather than splicing two files.
			partial = partial[:0]
			consumed = 0
			continue
		}
		select {
		case <-stop:
			return nil
		case <-time.After(poll):
		}
	}
}

// isStale reports whether the open handle no longer tracks path: the
// path was replaced by a different file, or the file was truncated
// below the bytes already consumed. A transiently missing path (mid
// rotation) is not stale — the follower keeps waiting for it to
// reappear.
func isStale(f *os.File, path string, consumed int64) (bool, error) {
	fiPath, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	fiOpen, err := f.Stat()
	if err != nil {
		return false, err
	}
	return !os.SameFile(fiOpen, fiPath) || fiPath.Size() < consumed, nil
}

// emitLine parses one complete journal line and prints it; malformed
// lines are surfaced verbatim rather than silently dropped.
func emitLine(w io.Writer, line []byte) {
	trimmed := strings.TrimSpace(string(line))
	if trimmed == "" {
		return
	}
	var rec obs.Record
	if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
		fmt.Fprintf(w, "?? %s\n", trimmed)
		return
	}
	fmt.Fprint(w, formatRecord(rec))
}

// runSummary accumulates one run's rollup while scanning its records.
type runSummary struct {
	method      string
	epochs      int
	bestAcc     float64
	hasAcc      bool
	lastLoss    float64
	hasLoss     bool
	divergences int
	rollbacks   int
	probes      int
	lastGrowth  float64
	status      string
	resumed     bool
}

func (s *runSummary) line(n int) string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "run %d: method=%s", n, orUnknown(s.method))
	if s.resumed {
		b.WriteString(" resumed=true")
	}
	fmt.Fprintf(b, " epochs=%d", s.epochs)
	if s.hasLoss {
		fmt.Fprintf(b, " last_loss=%.4g", s.lastLoss)
	}
	if s.hasAcc {
		fmt.Fprintf(b, " best_acc=%.4g", s.bestAcc)
	}
	if s.divergences > 0 {
		fmt.Fprintf(b, " divergences=%d", s.divergences)
	}
	if s.rollbacks > 0 {
		fmt.Fprintf(b, " rollbacks=%d", s.rollbacks)
	}
	if s.probes > 0 {
		fmt.Fprintf(b, " probes=%d last_growth=%.4g", s.probes, s.lastGrowth)
	}
	fmt.Fprintf(b, " status=%s\n", orUnknown(s.status))
	return b.String()
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

// summarize rolls the journal up into one line per run. Runs are
// delimited by run-start events; a run without a run-end (still in
// flight, or cut off by a crash) reports status=running.
func summarize(recs []obs.Record) string {
	var out strings.Builder
	var cur *runSummary
	n := 0
	flush := func() {
		if cur != nil {
			out.WriteString(cur.line(n))
		}
		cur = nil
	}
	ensure := func() *runSummary {
		if cur == nil {
			n++
			cur = &runSummary{status: "running"}
		}
		return cur
	}
	for _, r := range recs {
		switch r.Event() {
		case "run-start":
			flush()
			s := ensure()
			s.method, _ = r["method"].(string)
			s.resumed, _ = r["resumed"].(bool)
		case "epoch":
			s := ensure()
			s.epochs++
			if v, ok := r["train_loss"].(float64); ok {
				s.lastLoss, s.hasLoss = v, true
			}
			if v, ok := r["test_acc"].(float64); ok && (!s.hasAcc || v > s.bestAcc) {
				s.bestAcc, s.hasAcc = v, true
			}
		case "divergence":
			ensure().divergences++
		case "rollback":
			ensure().rollbacks++
		case "probe":
			s := ensure()
			s.probes++
			if v, ok := r["growth"].(float64); ok {
				s.lastGrowth = v
			}
		case "run-end":
			s := ensure()
			if st, ok := r["status"].(string); ok {
				s.status = st
			}
			if v, ok := r["best_acc"].(float64); ok && (!s.hasAcc || v > s.bestAcc) {
				s.bestAcc, s.hasAcc = v, true
			}
			flush()
		}
	}
	flush()
	out.WriteString(rankLines(recs))
	return out.String()
}

// rankSummary accumulates one worker rank's rollup from the
// rank-carrying dist events, which a merged stream interleaves from
// both sides of the wire: the coordinator's view (join, sync, retry,
// fault, timeout) and the worker's own journal (start, worker-sync,
// step-fault).
type rankSummary struct {
	joins, starts, syncs, workerSyncs int
	retries, timeouts, faults         int
}

// rankLines renders one rollup line per worker rank seen in the stream
// (nothing for a single-process journal).
func rankLines(recs []obs.Record) string {
	ranks := map[int]*rankSummary{}
	var order []int
	for _, r := range recs {
		v, ok := r["rank"].(float64)
		if !ok {
			continue
		}
		k := int(v)
		s := ranks[k]
		if s == nil {
			s = &rankSummary{}
			ranks[k] = s
			order = append(order, k)
		}
		switch r.Event() {
		case "dist-join":
			s.joins++
		case "dist-worker-start":
			s.starts++
		case "dist-sync":
			s.syncs++
		case "dist-worker-sync":
			s.workerSyncs++
		case "dist-retry":
			s.retries++
		case "dist-timeout":
			s.timeouts++
		case "dist-fault", "dist-step-fault":
			s.faults++
		}
	}
	sort.Ints(order)
	var b strings.Builder
	for _, k := range order {
		s := ranks[k]
		fmt.Fprintf(&b, "rank %d: joins=%d syncs=%d", k, s.joins, s.syncs)
		if s.starts > 0 {
			fmt.Fprintf(&b, " starts=%d", s.starts)
		}
		if s.workerSyncs > 0 {
			fmt.Fprintf(&b, " worker_syncs=%d", s.workerSyncs)
		}
		if s.retries > 0 {
			fmt.Fprintf(&b, " retries=%d", s.retries)
		}
		if s.timeouts > 0 {
			fmt.Fprintf(&b, " timeouts=%d", s.timeouts)
		}
		if s.faults > 0 {
			fmt.Fprintf(&b, " faults=%d", s.faults)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatRecord(r obs.Record) string {
	line := fmt.Sprintf("%-30v %-11s", r["ts"], r.Event())
	for _, k := range r.Keys() {
		if k == "ts" || k == "ev" {
			continue
		}
		line += fmt.Sprintf(" %s=%s", k, formatValue(r[k]))
	}
	return line + "\n"
}

func formatValue(v any) string {
	switch v.(type) {
	case map[string]any, []any:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprint(v)
		}
		return string(b)
	}
	return fmt.Sprint(v)
}
