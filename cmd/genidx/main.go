// Command genidx exports a synthetic benchmark to MNIST-format IDX files
// so the generated data can be inspected with standard tooling or loaded
// back via dataset.LoadIDXPair. Multi-channel benchmarks (CIFAR-10)
// cannot be represented in single-plane IDX and are rejected.
//
// Usage:
//
//	genidx -dataset mnist -out /tmp/mnist -train 1000 -test 200
//
// writes <out>-train-images.idx, <out>-train-labels.idx,
// <out>-test-images.idx, <out>-test-labels.idx.
package main

import (
	"flag"
	"fmt"
	"os"

	"samplednn/internal/dataset"
)

func main() {
	var (
		dsName   = flag.String("dataset", "mnist", "benchmark to export (single-channel only)")
		out      = flag.String("out", "benchmark", "output path prefix")
		seed     = flag.Uint64("seed", 42, "generator seed")
		trainCap = flag.Int("train", 1000, "training samples (0 = paper split)")
		testCap  = flag.Int("test", 200, "test samples (0 = paper split)")
	)
	flag.Parse()

	spec, err := dataset.SpecByName(*dsName)
	if err != nil {
		fatal(err)
	}
	if spec.Channels != 1 {
		fatal(fmt.Errorf("dataset %q has %d channels; IDX stores single-plane images", *dsName, spec.Channels))
	}
	ds, err := dataset.Generate(*dsName, dataset.Options{
		Seed: *seed, MaxTrain: *trainCap, MaxTest: *testCap, MaxVal: 1,
	})
	if err != nil {
		fatal(err)
	}

	write := func(kind string, s *dataset.Split) {
		img := fmt.Sprintf("%s-%s-images.idx", *out, kind)
		lbl := fmt.Sprintf("%s-%s-labels.idx", *out, kind)
		if err := dataset.WriteIDXImages(img, s.X, spec.Height, spec.Width); err != nil {
			fatal(err)
		}
		if err := dataset.WriteIDXLabels(lbl, s.Y); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d images) and %s\n", img, s.Len(), lbl)
	}
	write("train", ds.Train)
	write("test", ds.Test)

	// Round-trip sanity check.
	back, err := dataset.LoadIDXPair(
		fmt.Sprintf("%s-train-images.idx", *out),
		fmt.Sprintf("%s-train-labels.idx", *out),
	)
	if err != nil {
		fatal(fmt.Errorf("round-trip failed: %w", err))
	}
	fmt.Printf("round-trip ok: %d samples, dim %d\n", back.Len(), back.X.Cols)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genidx:", err)
	os.Exit(1)
}
