// Command loadgen drives an mlpserve instance with seeded synthetic
// /predict traffic and reports latency percentiles. In open-loop mode
// (-rate > 0) request start times are fixed on a clock grid regardless
// of completions — the arrival process a real client population
// produces, which is what makes tail latency honest under overload
// (closed-loop generators slow down with the server and hide queueing).
// With -rate 0 the workers run closed-loop, back to back.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -workers 4 -requests 1000 -rate 200
//
// The input dimensionality is autodetected from GET /healthz; payloads
// are seeded, so two runs against the same server send identical bytes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/obs"
	"samplednn/internal/rng"
)

// summary is the machine-readable run report.
type summary struct {
	Addr           string  `json:"addr"`
	Workers        int     `json:"workers"`
	Requests       int     `json:"requests"`
	Rows           int     `json:"rows"`
	RatePerSec     float64 `json:"rate_per_sec"` // 0 = closed loop
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Micros      float64 `json:"p50_us"`
	P95Micros      float64 `json:"p95_us"`
	P99Micros      float64 `json:"p99_us"`
	MaxMicros      int64   `json:"max_us"`
	Errors         int64   `json:"errors"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "mlpserve base URL")
		workers  = flag.Int("workers", 2, "concurrent request workers")
		requests = flag.Int("requests", 200, "total requests to send")
		rows     = flag.Int("rows", 4, "rows per request")
		dim      = flag.Int("dim", 0, "input features per row (0 = autodetect from /healthz)")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
		seed     = flag.Uint64("seed", 1, "payload RNG seed")
		out      = flag.String("out", "", "write the JSON summary here instead of stdout")
	)
	flag.Parse()
	if *workers <= 0 || *requests <= 0 || *rows <= 0 {
		fatal(fmt.Errorf("-workers, -requests, and -rows must be positive"))
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	d := *dim
	if d == 0 {
		var err error
		if d, err = detectDim(client, base); err != nil {
			fatal(fmt.Errorf("autodetecting -dim from /healthz: %w", err))
		}
	}

	// A small pool of distinct seeded payloads, cycled by request index.
	g := rng.New(*seed)
	payloads := make([][]byte, 16)
	for i := range payloads {
		rs := make([][]float64, *rows)
		for r := range rs {
			rs[r] = make([]float64, d)
			g.GaussianSlice(rs[r], 0, 1)
		}
		b, err := json.Marshal(map[string]any{"rows": rs})
		if err != nil {
			fatal(err)
		}
		payloads[i] = b
	}

	var (
		lat     = obs.NewDistribution()
		errs    atomic.Int64
		nextReq atomic.Int64
		wg      sync.WaitGroup
	)
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	url := base + "/predict"
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		//lint:ignore raw-goroutine finite load workers joined by the WaitGroup below; sleeping on the arrival grid would wedge a bounded pool
		go func() {
			defer wg.Done()
			for {
				i := int(nextReq.Add(1) - 1)
				if i >= *requests {
					return
				}
				if interval > 0 {
					// Open loop: request i departs at start + i*interval,
					// whether or not earlier requests have finished.
					if wait := time.Until(start.Add(time.Duration(i) * interval)); wait > 0 {
						time.Sleep(wait)
					}
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payloads[i%len(payloads)]))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, cpErr := bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
				lat.Observe(time.Since(t0).Microseconds())
				if cpErr != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	snap := lat.Snapshot()
	s := summary{
		Addr: base, Workers: *workers, Requests: *requests, Rows: *rows,
		RatePerSec: *rate, Seconds: secs,
		RequestsPerSec: float64(*requests) / secs,
		P50Micros:      snap.P50, P95Micros: snap.P95, P99Micros: snap.P99,
		MaxMicros: snap.Max, Errors: errs.Load(),
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := atomicfile.WriteFileBytes(*out, data); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}
	if s.Errors > 0 {
		fatal(fmt.Errorf("%d of %d requests failed", s.Errors, *requests))
	}
}

// detectDim reads the model's input width from /healthz.
func detectDim(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var info struct {
		Inputs int `json:"inputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, err
	}
	if info.Inputs <= 0 {
		return 0, fmt.Errorf("healthz reports %d inputs", info.Inputs)
	}
	return info.Inputs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
