// Command mips probes the ALSH maximum-inner-product-search engine in
// isolation: it indexes the columns of a random weight matrix, runs
// queries, and reports recall against brute force, candidate-set size,
// and query latency across hash parameter settings — the K/L/m trade-off
// behind ALSH-approx's node selection (§5.2).
//
// Usage:
//
//	mips -dim 128 -items 1000 -queries 200 -topk 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"samplednn/internal/lsh"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func main() {
	var (
		dim     = flag.Int("dim", 128, "vector dimensionality (layer fan-in)")
		items   = flag.Int("items", 1000, "indexed columns (layer width)")
		queries = flag.Int("queries", 200, "number of probe queries")
		topk    = flag.Int("topk", 10, "ground-truth set size for recall")
		seed    = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()

	g := rng.New(*seed)
	w := tensor.New(*dim, *items)
	g.GaussianSlice(w.Data, 0, 1)

	qs := make([][]float64, *queries)
	for i := range qs {
		qs[i] = make([]float64, *dim)
		g.GaussianSlice(qs[i], 0, 1)
	}

	fmt.Printf("MIPS probe: %d items x %d dims, %d queries, recall@%d\n\n", *items, *dim, *queries, *topk)
	fmt.Printf("%-14s %-10s %-12s %-12s %-12s\n", "params", "recall", "cand-frac", "query-lat", "build-time")
	fmt.Println("(srp = Sign-ALSH signed random projections; l2 = original L2-ALSH)")

	paramSets := []lsh.Params{
		{K: 4, L: 3, M: 3, U: 0.83},
		{K: 6, L: 5, M: 3, U: 0.83}, // the paper's setting
		{K: 6, L: 10, M: 3, U: 0.83},
		{K: 8, L: 10, M: 3, U: 0.83},
		{K: 8, L: 20, M: 3, U: 0.83},
		{K: 6, L: 30, M: 3, U: 0.83, Family: lsh.FamilyL2, R: 0.5}, // original L2-ALSH
	}
	for _, p := range paramSets {
		idx, err := lsh.NewMIPSIndex(*dim, *items, p, rng.New(*seed+1))
		if err != nil {
			fatal(err)
		}
		buildStart := time.Now()
		idx.Rebuild(w)
		buildTime := time.Since(buildStart)

		var recall, candFrac float64
		queryStart := time.Now()
		var buf []int
		for _, q := range qs {
			buf = idx.Query(q, buf)
			truth := lsh.BruteForceTopK(w, q, *topk)
			recall += lsh.Recall(buf, truth)
			candFrac += float64(len(buf)) / float64(*items)
		}
		lat := time.Since(queryStart) / time.Duration(len(qs))
		fam := "srp"
		if p.Family == lsh.FamilyL2 {
			fam = "l2"
		}
		fmt.Printf("K=%d L=%-2d %-4s %-10.3f %-12.3f %-12s %-12s\n",
			p.K, p.L, fam,
			recall/float64(len(qs)), candFrac/float64(len(qs)),
			lat, buildTime)
	}

	fmt.Println("\nhigher L → higher recall and larger candidate sets; higher K → sharper buckets;")
	fmt.Println("the l2 family needs far more tables for the same recall — the weakness that")
	fmt.Println("motivated Sign-ALSH.")
	fmt.Println("the paper's K=6, L=5 trades ~5% candidates for moderate recall (§5.2, §8.4).")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mips:", err)
	os.Exit(1)
}
