package main

import (
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/obs"
)

// profiler owns the lifetime of the -cpuprofile and -memprofile outputs.
// Every exit path — normal return, fatal(), the SIGINT exit — must call
// stop(): a CPU profile is unreadable unless StopCPUProfile flushes it,
// and the heap profile is only written here.
type profiler struct {
	cpuFile *os.File
	memPath string
	stopped bool
}

func startProfiler(cpuPath, memPath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		// The runtime streams CPU samples into this file for the whole
		// run, so it cannot be staged-and-renamed; a torn profile from a
		// crash is acceptable for a diagnostic artifact.
		//lint:ignore atomic-write CPU profile is streamed live by the runtime; cannot be staged atomically
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// stop flushes the CPU profile and writes the heap profile. Safe to call
// multiple times and on a nil receiver.
func (p *profiler) stop() {
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mlptrain: cpuprofile:", err)
		}
	}
	if p.memPath != "" {
		err := atomicfile.WriteFile(p.memPath, func(w io.Writer) error {
			runtime.GC() // report live objects, not garbage awaiting collection
			return pprof.WriteHeapProfile(w)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlptrain: memprofile:", err)
		}
	}
}

// servePprof exposes net/http/pprof and the Prometheus-format /metrics
// endpoint on addr in the background, so a long training run can be
// inspected live (goroutine dumps, heap, CPU sampling, and the trainer's
// epoch/loss/accuracy/probe gauges) without restarting it.
func servePprof(addr string) {
	// The trainer publishes its live gauges on the default registry; the
	// pprof import above registers its handlers on the same DefaultServeMux.
	http.Handle("/metrics", obs.Default)
	srv := &http.Server{
		Addr: addr,
		// pprof responses stream for minutes (/debug/pprof/profile,
		// /debug/pprof/trace), so the read bound goes on the headers and
		// the write bound must outlast the longest sampling window.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      15 * time.Minute,
	}
	//lint:ignore raw-goroutine long-lived diagnostic HTTP server; ListenAndServe never returns, so it cannot be a pool task
	go func() {
		if err := srv.ListenAndServe(); err != nil {
			fmt.Fprintln(os.Stderr, "mlptrain: pprof server:", err)
		}
	}()
}
