package main

import "context"

// restoreSignalsOnCancel arranges for stop to run as soon as ctx is
// cancelled. signal.NotifyContext keeps capturing its signals after the
// first delivery — the context is done, but SIGINT is still routed to
// the (already-cancelled) context and dropped — so without this a second
// Ctrl-C during a slow graceful shutdown does nothing and a wedged run
// is unkillable. Calling stop() at first cancellation restores the
// default signal disposition: the next SIGINT terminates the process.
func restoreSignalsOnCancel(ctx context.Context, stop func()) {
	//lint:ignore raw-goroutine blocks on ctx.Done for the process lifetime; panic-free and cannot run on the bounded pool
	go func() {
		<-ctx.Done()
		stop()
	}()
}
