// Command mlptrain trains one MLP with a chosen sampling method and
// prints per-epoch progress, the timing split, and the final confusion
// matrix.
//
// Usage:
//
//	mlptrain -dataset mnist -method mc -layers 3 -units 128 -batch 20 \
//	         -epochs 5 -lr 0.05 -train 2000 -test 500
//
// Methods: standard, dropout, adaptive-dropout, alsh, alsh-parallel, mc.
//
// Crash safety: with -state FILE the run writes a full-state checkpoint
// (weights, optimizer state, RNG streams, history) every
// -checkpoint-every epochs and on SIGINT/SIGTERM; -resume FILE continues
// it deterministically. -max-retries N enables divergence recovery:
// a non-finite loss rolls the run back to the last good epoch and
// multiplies the learning rate by -lr-decay before retrying.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/dist"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

// validateFlags rejects numeric flag values that would otherwise panic
// (or silently do nothing) far from the command line that caused them.
func validateFlags(layers, units, epochs, batch int, lr, keep float64, mcK, workers, threads, ckptEvery, maxRetries int, lrDecay float64, probeEvery, probeSamples int) error {
	// workers here is -alsh-workers (goroutines); the dist flags are
	// validated separately in validateDistFlags.
	switch {
	case layers < 0:
		return fmt.Errorf("-layers %d must be >= 0", layers)
	case units <= 0:
		return fmt.Errorf("-units %d must be positive", units)
	case epochs <= 0:
		return fmt.Errorf("-epochs %d must be positive", epochs)
	case batch <= 0:
		return fmt.Errorf("-batch %d must be positive", batch)
	case lr <= 0:
		return fmt.Errorf("-lr %v must be positive", lr)
	case keep <= 0 || keep > 1:
		return fmt.Errorf("-keep %v must be in (0, 1]", keep)
	case mcK <= 0:
		return fmt.Errorf("-mck %d must be positive", mcK)
	case workers < 0:
		return fmt.Errorf("-alsh-workers %d must be >= 0 (0 = one per CPU)", workers)
	case threads < 0:
		return fmt.Errorf("-threads %d must be >= 0 (0 = one per CPU)", threads)
	case ckptEvery <= 0:
		return fmt.Errorf("-checkpoint-every %d must be positive", ckptEvery)
	case maxRetries < 0:
		return fmt.Errorf("-max-retries %d must be >= 0", maxRetries)
	case lrDecay <= 0 || lrDecay > 1:
		return fmt.Errorf("-lr-decay %v must be in (0, 1]", lrDecay)
	case probeEvery < 0:
		return fmt.Errorf("-probe-every %d must be >= 0 (0 = disabled)", probeEvery)
	case probeSamples < 0:
		return fmt.Errorf("-probe-samples %d must be >= 0 (0 = default)", probeSamples)
	}
	return nil
}

// validateDistFlags checks the distributed-training flag cluster. The
// dist protocol replicates exactly one method (standard), so everything
// else is rejected up front rather than when the first worker desyncs.
func validateDistFlags(method string, workers, shards, rank int, join string) error {
	switch {
	case workers < 0:
		return fmt.Errorf("-workers %d must be >= 0 (0 = single process)", workers)
	case shards < 0:
		return fmt.Errorf("-shards %d must be >= 0 (0 = one per worker)", shards)
	case (workers > 0 || shards > 0) && method != "standard":
		return fmt.Errorf("distributed training (-workers/-shards) supports -method standard only, not %q", method)
	case join == "" && rank >= 0:
		return fmt.Errorf("-dist-rank %d requires -dist-join", rank)
	case join != "" && rank < 0:
		return fmt.Errorf("-dist-join requires -dist-rank (the rank this worker was assigned)")
	case join != "" && workers > 0:
		return fmt.Errorf("-dist-join (worker mode) and -workers (coordinator mode) are mutually exclusive")
	}
	return nil
}

func main() {
	// A process the coordinator re-executed as a worker must hand off
	// before touching any other flag or resource: it serves gradient
	// shards over TCP and exits when the coordinator shuts it down.
	if dist.IsWorkerProcess() {
		os.Exit(dist.WorkerMain())
	}
	var (
		dsName   = flag.String("dataset", "mnist", "benchmark: mnist, kmnist, fashion, emnist, norb, cifar10")
		method   = flag.String("method", "standard", "training method: standard, dropout, adaptive-dropout, alsh, alsh-parallel, mc")
		layers   = flag.Int("layers", 3, "hidden layers")
		units    = flag.Int("units", 128, "hidden units per layer")
		epochs   = flag.Int("epochs", 5, "training epochs")
		batch    = flag.Int("batch", 20, "batch size (1 = stochastic)")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		optName  = flag.String("opt", "", "optimizer: sgd, momentum, adagrad, adam (default sgd; alsh defaults to adam)")
		seed     = flag.Uint64("seed", 42, "random seed")
		trainCap = flag.Int("train", 2000, "training samples (0 = paper split)")
		testCap  = flag.Int("test", 500, "test samples (0 = paper split)")
		keep     = flag.Float64("keep", 0.05, "dropout keep probability")
		mcK      = flag.Int("mck", 10, "MC-approx sample count")
		alshWork = flag.Int("alsh-workers", 0, "worker goroutines for alsh-parallel (0 = one per CPU)")
		threads  = flag.Int("threads", 0, "worker threads for the dense/sampled kernels (0 = one per CPU)")

		distWork   = flag.Int("workers", 0, "distributed data-parallel worker processes (0 = single process; requires -method standard)")
		shards     = flag.Int("shards", 0, "gradient shards per batch (0 = one per worker); shard count alone fixes the reduced gradient")
		distListen = flag.String("dist-listen", "", "coordinator listen address (default 127.0.0.1:0)")
		distSpawn  = flag.Bool("dist-spawn", true, "spawn the -workers processes locally; false waits for external -dist-join workers")
		distWJ     = flag.String("dist-worker-journal", "", "journal prefix for spawned workers: rank R appends to <prefix>.rank<R>.jsonl (merge with journalcat -merge)")
		distJoin   = flag.String("dist-join", "", "join a coordinator at this address as a worker (requires -dist-rank) instead of training")
		distRank   = flag.Int("dist-rank", -1, "worker rank when joining with -dist-join")
		confuse    = flag.Bool("confusion", true, "print the final confusion matrix and per-class report")
		savePath   = flag.String("save", "", "checkpoint the best model to this file")
		loadPath   = flag.String("load", "", "initialize weights from a saved model instead of random init")

		statePath  = flag.String("state", "", "write full-state resumable checkpoints to this file")
		resumePath = flag.String("resume", "", "resume a run from a full-state checkpoint (implies -state when -state is unset)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "epochs between full-state checkpoints (requires -state)")
		maxRetries = flag.Int("max-retries", 0, "divergence rollbacks before giving up (0 = record divergence immediately)")
		lrDecay    = flag.Float64("lr-decay", 0.5, "learning-rate multiplier applied on each divergence rollback")

		journalPath = flag.String("journal", "", "append a structured JSONL run journal to this file (inspect with journalcat)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file on exit (open in Perfetto / chrome://tracing)")
		probeEvery  = flag.Int("probe-every", 0, "run the error-compounding probe every N batches (0 = off; journals per-layer error vs the §7 theory)")
		probeSamp   = flag.Int("probe-samples", 0, "probe minibatch size (0 = default 16)")
	)
	flag.Parse()
	// Validate the numeric flags up front: a non-positive batch size or
	// epoch count otherwise surfaces as a confusing panic (or a silent
	// no-op run) deep inside the trainer.
	if err := validateFlags(*layers, *units, *epochs, *batch, *lr, *keep, *mcK, *alshWork, *threads, *ckptEvery, *maxRetries, *lrDecay, *probeEvery, *probeSamp); err != nil {
		fatal(err)
	}
	if err := validateDistFlags(*method, *distWork, *shards, *distRank, *distJoin); err != nil {
		fatal(err)
	}
	if *distJoin != "" {
		// Manual worker mode: serve a (typically -dist-spawn=false)
		// coordinator on another process or machine until it shuts us
		// down. Everything the worker needs — dataset provenance, model
		// blob, optimizer state — arrives over the wire.
		if err := dist.RunWorker(*distJoin, *distRank); err != nil {
			fatal(err)
		}
		return
	}
	if *threads != 0 {
		pool.SetDefaultWorkers(*threads)
	}
	if *resumePath != "" && *statePath == "" {
		// A resumed run keeps checkpointing to the file it came from.
		*statePath = *resumePath
	}

	prof, err := startProfiler(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	onExit = prof.stop
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}
	var journal *obs.Journal
	if *journalPath != "" {
		journal, err = obs.Open(*journalPath)
		if err != nil {
			fatal(err)
		}
		onExit = func() {
			if err := journal.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mlptrain: journal:", err)
			}
			prof.stop()
		}
	}
	if *tracePath != "" {
		trc := trace.New(0)
		trace.SetActive(trc)
		prev := onExit
		onExit = func() {
			trace.SetActive(nil)
			if err := trc.WriteFile(*tracePath); err != nil {
				fmt.Fprintln(os.Stderr, "mlptrain: trace:", err)
			} else if d := trc.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "mlptrain: trace: ring wrapped, oldest %d spans dropped\n", d)
			}
			prev()
		}
	}

	dataOpts := dataset.Options{Seed: *seed, MaxTrain: *trainCap, MaxTest: *testCap, MaxVal: 200}
	ds, err := dataset.Generate(*dsName, dataOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d test, dim %d, %d classes\n",
		*dsName, ds.Train.Len(), ds.Test.Len(), ds.Spec.Dim(), ds.Spec.Classes)

	var net *nn.Network
	if *loadPath != "" {
		net, err = nn.LoadFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded model from %s (%d parameters)\n", *loadPath, net.NumParams())
	} else {
		net, err = nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), *units, *layers, ds.Spec.Classes), rng.New(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("network: %d hidden layers x %d units, %d parameters\n", *layers, *units, net.NumParams())
	}

	name := *optName
	if name == "" {
		if *method == "alsh" {
			name = "adam"
		} else {
			name = "sgd"
		}
	}
	optim, err := opt.ByName(name, *lr)
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultOptions(*seed)
	opts.DropoutKeep = *keep
	opts.MC.K = *mcK
	opts.Workers = *alshWork
	opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 5, L: 12, M: 3, U: 0.83}, MinActive: 10}
	m, err := core.New(*method, net, optim, opts)
	if err != nil {
		fatal(err)
	}

	// Distributed data-parallel mode: a coordinator takes over every
	// batch step, sharding it across worker processes and reducing the
	// gradients in fixed shard order, so the result is byte-identical to
	// the single-process run with the same -shards.
	var stepper train.BatchStepper
	if *distWork > 0 || *shards > 0 {
		effShards := *shards
		if effShards == 0 {
			effShards = *distWork
		}
		co, err := dist.NewCoordinator(m, ds, *batch, dist.Options{
			Workers:    *distWork,
			Shards:     *shards,
			ListenAddr: *distListen,
			Data:       dataOpts,
			Seed:       *seed,
			NoSpawn:    !*distSpawn,
			Journal:    journal,

			WorkerJournalPrefix: *distWJ,
		})
		if err != nil {
			fatal(err)
		}
		stepper = co
		prev := onExit
		onExit = func() {
			if err := co.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mlptrain: dist:", err)
			}
			prev()
		}
		if *distWork > 0 {
			mode := "spawning locally"
			if !*distSpawn {
				mode = fmt.Sprintf("waiting for -dist-join workers (spawn disabled); join with: mlptrain -dist-join %s -dist-rank <0..%d>", co.Addr(), *distWork-1)
			}
			fmt.Printf("distributed: %d workers, %d shards, coordinator on %s (%s)\n",
				*distWork, effShards, co.Addr(), mode)
		} else {
			fmt.Printf("sharded: %d shards in-process (workers=0 reference path)\n", effShards)
		}
	}

	tr, err := train.New(m, ds, train.Config{
		Stepper:         stepper,
		Epochs:          *epochs,
		BatchSize:       *batch,
		Seed:            *seed,
		MaxEvalSamples:  1000,
		RebuildPerEpoch: *method == "alsh" || *method == "alsh-parallel",
		CheckpointPath:  *savePath,
		StatePath:       *statePath,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *maxRetries,
		LRDecay:         *lrDecay,
		Journal:         journal,
		ProbeEvery:      *probeEvery,
		ProbeSamples:    *probeSamp,
	})
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM stop training at the next batch boundary; the trainer
	// writes the last good snapshot to -state before returning, so an
	// interrupted run can be continued with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Hand signal handling back to the runtime once the first signal has
	// cancelled ctx, so a second Ctrl-C force-exits instead of being
	// swallowed while the trainer drains the current batch.
	restoreSignalsOnCancel(ctx, stop)

	var hist *train.History
	if *resumePath != "" {
		fmt.Printf("resuming from %s\n", *resumePath)
		hist, err = tr.ResumeContext(ctx, *resumePath)
	} else {
		hist, err = tr.RunContext(ctx)
	}
	if errors.Is(err, context.Canceled) {
		if *statePath != "" {
			fmt.Printf("\ninterrupted; state saved to %s — continue with -resume %s\n", *statePath, *statePath)
		} else {
			fmt.Println("\ninterrupted (no -state file configured; progress discarded)")
		}
		onExit()
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	for _, e := range hist.Epochs {
		fmt.Printf("epoch %2d  loss %.4f  test-acc %5.2f%%  ff %6.3fs  bp %6.3fs  maint %6.3fs\n",
			e.Epoch, e.TrainLoss, 100*e.TestAccuracy,
			e.Timing.Forward.Seconds(), e.Timing.Backward.Seconds(), e.Timing.Maintain.Seconds())
	}
	if hist.Diverged {
		fmt.Println("training diverged (non-finite loss); history ends at the collapse — try -max-retries with a lower -lr")
	}
	fmt.Printf("best accuracy: %.2f%%\n", 100*hist.BestAccuracy())

	rec := core.Recommend(*batch, *layers, false)
	fmt.Printf("§10.4 recommendation for this setting: %s (%s)\n", rec.Method, rec.Reason)

	if *confuse {
		cm := train.Confusion(m, ds.Test, ds.Spec.Classes, 1000)
		fmt.Println(cm.Render())
		fmt.Println(cm.Report())
		fmt.Printf("prediction coverage %.2f, entropy %.2f\n", cm.PredictionCoverage(), cm.PredictionEntropy())
	}
	if *savePath != "" {
		fmt.Printf("best model checkpointed to %s\n", *savePath)
	}
	onExit()
}

// onExit flushes telemetry (CPU/heap profiles, the run journal) and must
// run on every exit path; os.Exit skips deferred calls, so fatal() and
// the interrupt path invoke it explicitly.
var onExit = func() {}

func fatal(err error) {
	onExit()
	fmt.Fprintln(os.Stderr, "mlptrain:", err)
	os.Exit(1)
}
