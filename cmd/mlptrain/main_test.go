package main

import (
	"context"
	"testing"
	"time"
)

func TestValidateFlagsRejectsBadValues(t *testing.T) {
	ok := func() error {
		return validateFlags(3, 128, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, 0, 0)
	}
	if err := ok(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"layers", validateFlags(-1, 128, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, 0, 0)},
		{"units", validateFlags(3, 0, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, 0, 0)},
		{"epochs", validateFlags(3, 128, 0, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, 0, 0)},
		{"keep", validateFlags(3, 128, 5, 20, 0.05, 1.5, 10, 0, 0, 1, 0, 0.5, 0, 0)},
		{"lr-decay", validateFlags(3, 128, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0, 0, 0)},
		{"probe-every", validateFlags(3, 128, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, -1, 0)},
		{"probe-samples", validateFlags(3, 128, 5, 20, 0.05, 0.5, 10, 0, 0, 1, 0, 0.5, 0, -1)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("bad -%s accepted", c.name)
		}
	}
}

// TestRestoreSignalsOnCancel pins the double-Ctrl-C fix: once the signal
// context is cancelled, the NotifyContext stop function must be invoked
// so the default signal disposition is restored and a second SIGINT
// force-exits. Before the fix, stop only ran via defer at process end,
// leaving every subsequent signal swallowed.
func TestRestoreSignalsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stopped := make(chan struct{})
	restoreSignalsOnCancel(ctx, func() { close(stopped) })

	select {
	case <-stopped:
		t.Fatal("stop ran before the context was cancelled")
	case <-time.After(10 * time.Millisecond):
	}

	cancel() // stands in for the first SIGINT
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("stop was not called after cancellation; a second SIGINT would be swallowed")
	}
}
