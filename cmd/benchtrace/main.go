// Command benchtrace measures the overhead of the span tracer and the
// error-compounding probe on ALSH-approx training and writes the results
// to a JSON report (BENCH_trace.json by default), the artifact the
// Makefile `bench-trace` target tracks.
//
// Usage:
//
//	benchtrace -scale tiny -out BENCH_trace.json
//
// The report includes two uninstrumented baseline runs; their relative
// gap is the host's noise floor, below which an overhead measurement
// means nothing.
package main

import (
	"flag"
	"fmt"
	"os"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

func main() {
	var (
		out   = flag.String("out", "BENCH_trace.json", "output JSON path")
		scale = flag.String("scale", "tiny", "benchmark scale: tiny, small, or paper")
	)
	flag.Parse()
	s, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	rep, err := bench.RunTraceBench(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("noise floor %.2f%% (two baseline runs)\n", rep.NoiseFloorPct)
	for _, p := range rep.Points {
		fmt.Printf("%-14s %8.3f s/epoch  %+6.1f%%  spans %-8d acc %.2f%%\n",
			p.Config, p.SecondsPerEpoch, p.OverheadPct, p.Spans, 100*p.Accuracy)
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d configs, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrace:", err)
	os.Exit(1)
}
