// Command benchtrace measures the overhead of the span tracer and the
// error-compounding probe on ALSH-approx training and writes the results
// to a JSON report (BENCH_trace.json by default), the artifact the
// Makefile `bench-trace` target tracks.
//
// Usage:
//
//	benchtrace -scale tiny -out BENCH_trace.json
//	benchtrace -obs -out BENCH_trace.json
//
// The report includes two uninstrumented baseline runs; their relative
// gap is the host's noise floor, below which an overhead measurement
// means nothing.
//
// -obs skips the training sweep and instead measures the correlation
// plane's per-operation overhead (context-stamped frame round trips,
// HTTP request-context derivation, the disabled journal path), merging
// the numbers into the existing report at -out so one file tracks all
// observability costs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_trace.json", "output JSON path")
		scale   = flag.String("scale", "tiny", "benchmark scale: tiny, small, or paper")
		obsOnly = flag.Bool("obs", false, "measure correlation-plane overhead (ns/frame, ns/request) and merge into the report at -out")
		iters   = flag.Int("iters", 0, "with -obs: measurement loop count (0 = default)")
	)
	flag.Parse()
	if *obsOnly {
		runObs(*out, *iters)
		return
	}
	s, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	rep, err := bench.RunTraceBench(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("noise floor %.2f%% (two baseline runs)\n", rep.NoiseFloorPct)
	for _, p := range rep.Points {
		fmt.Printf("%-14s %8.3f s/epoch  %+6.1f%%  spans %-8d acc %.2f%%\n",
			p.Config, p.SecondsPerEpoch, p.OverheadPct, p.Spans, 100*p.Accuracy)
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d configs, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

// runObs measures the correlation plane's per-op costs and merges them
// into the report at path, preserving any existing training sweep.
func runObs(path string, iters int) {
	var rep bench.TraceReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			fatal(fmt.Errorf("existing report %s does not parse (delete it or fix it): %w", path, err))
		}
	}
	o, err := bench.RunObsBench(iters)
	if err != nil {
		fatal(err)
	}
	rep.Obs = o
	if rep.Host.CPUs == 0 {
		rep.Host.CPUs = runtime.NumCPU()
		rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("frame round trip: %.0f ns baseline, %.0f ns with ctx+clock (+%.0f ns)\n",
		o.FrameBaselineNS, o.FrameCtxNS, o.FrameOverheadNS)
	fmt.Printf("request ctx + X-Request-Id: %.0f ns/request\n", o.RequestCtxNS)
	fmt.Printf("disabled journal path: %.1f ns/emit\n", o.DisabledEmitNS)
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(path, data); err != nil {
		fatal(err)
	}
	fmt.Printf("merged obs overhead into %s (%d iters)\n", path, o.Iters)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrace:", err)
	os.Exit(1)
}
