// Command benchserve runs the serving-layer latency/throughput sweep
// and writes BENCH_serve.json, the artifact the Makefile `bench-serve`
// target tracks.
//
// Usage:
//
//	benchserve -workers 1,2,4 -requests 300 -rows 4 -out BENCH_serve.json
//
// The sweep stands up a real serving instance (checkpoint load, HTTP,
// convoy micro-batcher) on a loopback port; every point's responses are
// verified against a local forward pass of the same checkpoint before
// its timing is recorded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"samplednn/internal/atomicfile"
	"samplednn/internal/bench"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_serve.json", "output JSON path")
		workers  = flag.String("workers", "1,2,4", "comma-separated closed-loop worker counts")
		requests = flag.Int("requests", 300, "requests per point")
		rows     = flag.Int("rows", 4, "rows per request")
	)
	flag.Parse()
	ws, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *requests <= 0 || *rows <= 0 {
		fatal(fmt.Errorf("-requests and -rows must be positive"))
	}

	rep, err := bench.RunServeBench(ws, *requests, *rows)
	if err != nil {
		fatal(err)
	}
	for _, p := range rep.Points {
		fmt.Printf("workers=%d  %4d reqs in %6.2fs  %7.1f req/s  %8.1f rows/s  p50 %6.0fus  p95 %6.0fus  p99 %6.0fus  max-coalesced %d\n",
			p.Workers, p.Requests, p.Seconds, p.RequestsPerSec, p.RowsPerSec,
			p.P50Micros, p.P95Micros, p.P99Micros, p.MaxCoalesced)
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if err := atomicfile.WriteFileBytes(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d points, host CPUs %d)\n", *out, len(rep.Points), rep.Host.CPUs)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
