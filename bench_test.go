// Package samplednn's root benchmark suite regenerates every table and
// figure of the paper (one Benchmark per artifact, delegating to the
// internal/bench experiment registry) and benchmarks the design choices
// DESIGN.md calls out for ablation: GEMM loop order, the column-subset
// kernel, ALSH hash parameters, hash-maintenance cadence, MC sample
// counts, and the forward/backward placement of MC approximation.
//
// Paper-artifact benchmarks run the Small scale and attach the headline
// metric of the artifact (accuracy, epoch time, error ratio) via
// b.ReportMetric, so `go test -bench=.` output reads like the paper's
// evaluation section. EXPERIMENTS.md records the paper-vs-measured
// comparison.
package samplednn

import (
	"strconv"
	"testing"

	"samplednn/internal/approxmm"
	"samplednn/internal/bench"
	"samplednn/internal/conv"
	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/theory"
	"samplednn/internal/train"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and returns the last result.
func runExperiment(b *testing.B, id string, s bench.Scale) *bench.Result {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res, err = e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func cell(b *testing.B, res *bench.Result, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(res.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q", row, col, res.Rows[row][col])
	}
	return v
}

func BenchmarkTheoryTable(b *testing.B) {
	res := runExperiment(b, "theory-table", bench.Small)
	b.ReportMetric(cell(b, res, 2, 1), "ratio@k3")
	b.ReportMetric(cell(b, res, 5, 1), "ratio@k6")
}

func BenchmarkTable2(b *testing.B) {
	res := runExperiment(b, "table2", bench.Tiny) // 36 training runs; Tiny keeps the suite tractable
	b.ReportMetric(cell(b, res, 0, 2), "mnist_mcM_acc%")
	b.ReportMetric(cell(b, res, 0, 6), "mnist_std_acc%")
}

func BenchmarkTable3(b *testing.B) {
	res := runExperiment(b, "table3", bench.Small)
	// rows: Standard-S, Dropout-S, Adaptive, ALSH, MC-S; col 1 = epoch secs.
	std := parseSecs(b, res.Rows[0][1])
	alsh := parseSecs(b, res.Rows[3][1])
	b.ReportMetric(std, "std_epoch_s")
	b.ReportMetric(alsh, "alsh_epoch_s")
	b.ReportMetric(alsh/std, "alsh_over_std")
}

func BenchmarkTable4(b *testing.B) {
	res := runExperiment(b, "table4", bench.Small)
	std := parseSecs(b, res.Rows[0][1])
	mc := parseSecs(b, res.Rows[3][1])
	b.ReportMetric(std, "std_epoch_s")
	b.ReportMetric(mc, "mc_epoch_s")
	b.ReportMetric(std/mc, "mc_speedup")
}

func parseSecs(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s[:len(s)-1], 64) // trim trailing 's'
	if err != nil {
		b.Fatalf("duration cell %q", s)
	}
	return v
}

func BenchmarkFig3(b *testing.B) {
	res := runExperiment(b, "fig3", bench.Tiny)
	_ = res
}

func BenchmarkFig5(b *testing.B) {
	res := runExperiment(b, "fig5", bench.Tiny)
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 2), "mcM_deep_acc%")
}

func BenchmarkFig6(b *testing.B) {
	res := runExperiment(b, "fig6", bench.Small)
	b.ReportMetric(cell(b, res, 1, 1), "mcS_lowlr_acc%")
}

func BenchmarkFig7(b *testing.B) {
	res := runExperiment(b, "fig7", bench.Small)
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, 0, 2), "alsh_shallow_acc%")
	b.ReportMetric(cell(b, res, last, 2), "alsh_deep_acc%")
	b.ReportMetric(cell(b, res, last, 3), "mcM_deep_acc%")
}

func BenchmarkFig8(b *testing.B) {
	res := runExperiment(b, "fig8", bench.Tiny)
	last := len(res.Rows) - 1
	b.ReportMetric(parseSecs(b, res.Rows[last][3])/parseSecs(b, res.Rows[0][3]), "alsh_depth_growth")
}

func BenchmarkFig9(b *testing.B) {
	res := runExperiment(b, "fig9", bench.Small)
	_ = res
}

func BenchmarkFig10(b *testing.B) {
	res := runExperiment(b, "fig10", bench.Small)
	b.ReportMetric(cell(b, res, 0, 1), "batch1_acc%")
	b.ReportMetric(cell(b, res, len(res.Rows)-1, 1), "batch20_acc%")
}

func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11", bench.Small)
	b.ReportMetric(cell(b, res, 0, 3), "mc_over_std@batch1")
	b.ReportMetric(cell(b, res, len(res.Rows)-1, 3), "mc_over_std@batch20")
}

func BenchmarkFig12(b *testing.B) {
	res := runExperiment(b, "fig12", bench.Tiny)
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "mcS_deep_acc%")
}

func BenchmarkMemory(b *testing.B) {
	res := runExperiment(b, "mem", bench.Tiny)
	for _, row := range res.Rows {
		if row[0] == "ALSH" {
			v, _ := strconv.ParseFloat(row[3], 64)
			b.ReportMetric(v/1024, "alsh_index_KiB")
		}
	}
}

func BenchmarkPredCollapse(b *testing.B) {
	res := runExperiment(b, "pred-collapse", bench.Tiny)
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, 0, 3), "entropy_shallow")
	b.ReportMetric(cell(b, res, last, 3), "entropy_deep")
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkMatMul is the headline dense-GEMM benchmark: 512×512 by
// 512×512 under the shared worker pool at 1/2/4 workers. workers=1 is
// the serial baseline; on a ≥4-core host the 4-worker point should show
// ≥2x (single-core hosts measure scheduling overhead only). The full
// kernel sweep with a JSON artifact is `make bench-gemm`.
func BenchmarkMatMul(b *testing.B) {
	g := rng.New(32)
	const n = 512
	x := tensor.New(n, n)
	y := tensor.New(n, n)
	g.GaussianSlice(x.Data, 0, 1)
	g.GaussianSlice(y.Data, 0, 1)
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			p := pool.New(w)
			tensor.SetPool(p)
			defer func() {
				tensor.SetPool(nil)
				p.Close()
			}()
			out := tensor.New(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(out, x, y)
			}
		})
	}
}

// GEMM loop order: the cache-friendly ikj kernel vs the textbook ijk.
func BenchmarkGEMMVariants(b *testing.B) {
	g := rng.New(1)
	const n = 128
	x := tensor.New(n, n)
	y := tensor.New(n, n)
	g.GaussianSlice(x.Data, 0, 1)
	g.GaussianSlice(y.Data, 0, 1)
	b.Run("ikj", func(b *testing.B) {
		out := tensor.New(n, n)
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(out, x, y)
		}
	})
	b.Run("naive_ijk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulNaive(x, y)
		}
	})
	b.Run("transB", func(b *testing.B) {
		out := tensor.New(n, n)
		for i := 0; i < b.N; i++ {
			tensor.MatMulTransBInto(out, x, y)
		}
	})
}

// Column-subset kernel: the §4.2 claim that sampling columns cuts one
// factor of the layer cost from n to |S|.
func BenchmarkMatMulColsFraction(b *testing.B) {
	g := rng.New(2)
	const batch, nIn, nOut = 20, 256, 256
	x := tensor.New(batch, nIn)
	w := tensor.New(nIn, nOut)
	g.GaussianSlice(x.Data, 0, 1)
	g.GaussianSlice(w.Data, 0, 1)
	for _, frac := range []float64{0.05, 0.25, 1.0} {
		cols := make([]int, int(frac*nOut))
		for i := range cols {
			cols[i] = i
		}
		b.Run("frac="+strconv.FormatFloat(frac, 'g', 2, 64), func(b *testing.B) {
			out := tensor.New(batch, nOut)
			for i := 0; i < b.N; i++ {
				tensor.MatMulCols(out, x, w, cols)
			}
		})
	}
}

// ALSH hash parameters (paper: K=6, L=5): query cost and selectivity.
func BenchmarkALSHParams(b *testing.B) {
	g := rng.New(3)
	const dim, items = 128, 1000
	w := tensor.New(dim, items)
	g.GaussianSlice(w.Data, 0, 1)
	q := make([]float64, dim)
	g.GaussianSlice(q, 0, 1)
	for _, p := range []lsh.Params{
		{K: 4, L: 3, M: 3, U: 0.83},
		{K: 6, L: 5, M: 3, U: 0.83},
		{K: 8, L: 10, M: 3, U: 0.83},
	} {
		name := "K" + strconv.Itoa(p.K) + "_L" + strconv.Itoa(p.L)
		b.Run(name, func(b *testing.B) {
			idx, err := lsh.NewMIPSIndex(dim, items, p, rng.New(4))
			if err != nil {
				b.Fatal(err)
			}
			idx.Rebuild(w)
			var buf []int
			var cand int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = idx.Query(q, buf)
				cand = len(buf)
			}
			b.ReportMetric(float64(cand)/items, "cand_frac")
		})
	}
}

// MC sample count k (paper: k=10): per-step cost of the sampled backward.
func BenchmarkMCSamples(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 5, MaxTrain: 64, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Train.X
	y := ds.Train.Y
	for _, k := range []int{5, 10, 20, 50} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(6))
			if err != nil {
				b.Fatal(err)
			}
			m := core.NewMCApprox(net, opt.NewSGD(0.01), core.MCConfig{K: k}, rng.New(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(x, y)
			}
		})
	}
}

// MC approximation placement (§10.1): backward-only (the paper's choice)
// vs forward-only vs both.
func BenchmarkMCWhere(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 8, MaxTrain: 64, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	for _, where := range []core.MCWhere{core.MCBackward, core.MCForward, core.MCBoth} {
		b.Run(where.String(), func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(9))
			if err != nil {
				b.Fatal(err)
			}
			m := core.NewMCApprox(net, opt.NewSGD(0.01), core.MCConfig{K: 10, Where: where}, rng.New(10))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(ds.Train.X, ds.Train.Y)
			}
		})
	}
}

// Hash-maintenance cadence (§9.2: every 100 samples early, 1000 late).
func BenchmarkRebuildCadence(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 11, MaxTrain: 200, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	for _, every := range []int{10, 100, 1000} {
		b.Run("every="+strconv.Itoa(every), func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(12))
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewALSHApprox(net, opt.NewAdam(0.001), core.ALSHConfig{
				Params:            lsh.Params{K: 4, L: 5, M: 3, U: 0.83},
				EarlyRebuildEvery: every, LateRebuildEvery: every,
			}, rng.New(13))
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(1, ds.Spec.Dim())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % ds.Train.Len()
				copy(x.RowView(0), ds.Train.X.RowView(j))
				m.Step(x, ds.Train.Y[j:j+1])
			}
			t := m.Timing()
			if t.Total() > 0 {
				b.ReportMetric(float64(t.Maintain)/float64(t.Total()), "maintain_frac")
			}
		})
	}
}

// AMM estimators head to head on one product size.
func BenchmarkAMMEstimators(b *testing.B) {
	g := rng.New(14)
	a := tensor.New(64, 512)
	c := tensor.New(512, 64)
	g.GaussianSlice(a.Data, 0, 1)
	g.GaussianSlice(c.Data, 0, 1)
	ests := []approxmm.Approximator{
		approxmm.Exact{},
		approxmm.NewCRSampler(32, g),
		approxmm.NewBernoulliSampler(32, g),
		approxmm.NewTopKSampler(32),
		approxmm.NewUniformSampler(32, g),
	}
	for _, est := range ests {
		b.Run(est.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est.Multiply(a, c)
			}
		})
	}
}

// Theory closed form (sanity/throughput only).
func BenchmarkTheoryClosedForm(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += theory.ErrorRatio(5, 1+i%7)
	}
	_ = sink
}

// Full training-step cost per method at the paper's 3-layer shape
// (width scaled to 128), batch 20.
func BenchmarkMethodStep(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 15, MaxTrain: 64, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Train.X
	y := ds.Train.Y
	for _, name := range core.MethodNames() {
		b.Run(name, func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(16))
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions(17)
			opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 4, L: 5, M: 3, U: 0.83}}
			m, err := core.New(name, net, opt.NewSGD(0.01), opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(x, y)
			}
		})
	}
}

// Trainer throughput end to end (samples/sec) for the standard method.
func BenchmarkTrainerEpoch(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 18, MaxTrain: 256, MaxTest: 32, MaxVal: 32})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 64, 3, ds.Spec.Classes), rng.New(19))
		if err != nil {
			b.Fatal(err)
		}
		m := core.NewStandard(net, opt.NewSGD(0.05))
		tr, err := train.New(m, ds, train.Config{Epochs: 1, BatchSize: 20, Seed: 20, MaxEvalSamples: 32})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse-input kernel vs the dense transposed product at the activation
// sparsities chained node sampling produces (the SLIDE-style input-
// sparsity win).
func BenchmarkSparseTransB(b *testing.B) {
	g := rng.New(20)
	const batch, n, s = 20, 512, 64
	w := tensor.New(s, n)
	g.GaussianSlice(w.Data, 0, 1)
	for _, density := range []float64{0.05, 0.25, 1.0} {
		x := tensor.New(batch, n)
		for i := range x.Data {
			if g.Float64() < density {
				x.Data[i] = g.NormFloat64()
			}
		}
		name := "density=" + strconv.FormatFloat(density, 'g', 2, 64)
		b.Run(name+"/dense", func(b *testing.B) {
			out := tensor.New(batch, s)
			for i := 0; i < b.N; i++ {
				tensor.MatMulTransBInto(out, x, w)
			}
		})
		b.Run(name+"/sparse", func(b *testing.B) {
			out := tensor.New(batch, s)
			var sup []int
			for i := 0; i < b.N; i++ {
				sup = tensor.MatMulTransBSparseInto(out, x, w, sup)
			}
		})
	}
}

// Parallel ALSH worker sweep: per-step wall time at 1/2/4 workers.
func BenchmarkParallelALSHWorkers(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 21, MaxTrain: 64, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(22))
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewParallelALSH(net, opt.NewAdam(0.001), core.ALSHConfig{
				Params: lsh.Params{K: 4, L: 5, M: 3, U: 0.83},
			}, workers, rng.New(23))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(ds.Train.X, ds.Train.Y)
			}
		})
	}
}

// Sampled convolution (the technical-report CNN extension): exact vs
// Eq. 7-sampled weight gradients for an im2col conv layer.
func BenchmarkSampledConvGradW(b *testing.B) {
	g := rng.New(24)
	const inCh, outCh, k, n, batch = 3, 16, 3, 24, 8
	x := tensor.New(batch, inCh*n*n)
	g.GaussianSlice(x.Data, 0, 1)
	for _, sampleK := range []int{0, 32, 128} {
		name := "exact"
		if sampleK > 0 {
			name = "k=" + strconv.Itoa(sampleK)
		}
		b.Run(name, func(b *testing.B) {
			c := conv.NewTrainableConv2D(inCh, outCh, k, rng.New(25))
			c.SampleK = sampleK
			c.Rand = rng.New(26)
			z := c.Forward(x, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Backward(z)
			}
		})
	}
}

// MC estimator ablation (§6.1 CR vs §6.2 Bernoulli vs top-k): per-step
// cost of the sampled backward pass.
func BenchmarkMCEstimators(b *testing.B) {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 27, MaxTrain: 64, MaxTest: 16, MaxVal: 16})
	if err != nil {
		b.Fatal(err)
	}
	for _, est := range []core.MCEstimator{core.MCBernoulli, core.MCCR, core.MCTopK} {
		b.Run(est.String(), func(b *testing.B) {
			net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 128, 3, ds.Spec.Classes), rng.New(28))
			if err != nil {
				b.Fatal(err)
			}
			m := core.NewMCApprox(net, opt.NewSGD(0.01), core.MCConfig{K: 10, Estimator: est}, rng.New(29))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(ds.Train.X, ds.Train.Y)
			}
		})
	}
}

// Multi-probe LSH: query cost and selectivity vs probe count at fixed
// K=6, L=4 — recall per byte of table memory (§9.4 trade).
func BenchmarkMultiprobe(b *testing.B) {
	g := rng.New(30)
	const dim, items = 128, 1000
	w := tensor.New(dim, items)
	g.GaussianSlice(w.Data, 0, 1)
	q := make([]float64, dim)
	g.GaussianSlice(q, 0, 1)
	for _, probes := range []int{0, 2, 4} {
		b.Run("probes="+strconv.Itoa(probes), func(b *testing.B) {
			idx, err := lsh.NewMIPSIndex(dim, items, lsh.Params{K: 6, L: 4, M: 3, U: 0.83, Probes: probes}, rng.New(31))
			if err != nil {
				b.Fatal(err)
			}
			idx.Rebuild(w)
			var buf []int
			var cand int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = idx.Query(q, buf)
				cand = len(buf)
			}
			b.ReportMetric(float64(cand)/items, "cand_frac")
		})
	}
}
